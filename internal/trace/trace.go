// Package trace exports scheduling timelines in the Chrome trace-event
// format (the JSON consumed by chrome://tracing and https://ui.perfetto.dev),
// so Olympian's quantum interleaving can be inspected visually — each
// client is a track, each quantum a slice.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"olympian/internal/core"
)

// event is one Chrome trace event ("X" = complete slice, "i" = instant,
// "M" = metadata such as process_name/thread_name).
type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant scope ("t" = thread)
	Args any     `json:"args,omitempty"`
}

// nameArgs is the payload of a process_name/thread_name metadata event.
type nameArgs struct {
	Name string `json:"name"`
}

// metaEvent builds an "M" metadata event labeling a process or thread.
func metaEvent(kind string, pid, tid int, label string) event {
	return event{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: nameArgs{Name: label}}
}

type traceFile struct {
	TraceEvents     []event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders scheduling-interval records as a Chrome trace.
// clientLabels optionally maps client ids to track names (e.g. model
// names); unmapped clients get "client-N".
func WriteChromeTrace(w io.Writer, records []core.QuantumRecord, clientLabels map[int]string) error {
	tf := traceFile{
		// An explicitly empty slice: a nil one marshals to JSON null,
		// which Perfetto rejects.
		TraceEvents:     []event{},
		DisplayTimeUnit: "ms",
		Metadata: map[string]string{
			"source": "olympian simulation",
			"format": "one track per client; one slice per scheduling quantum",
		},
	}
	tf.TraceEvents = append(tf.TraceEvents, metaEvent("process_name", 0, 0, "olympian"))
	named := map[int]bool{}
	for _, r := range records {
		label := clientLabels[r.Client]
		if label == "" {
			label = fmt.Sprintf("client-%d", r.Client)
		}
		if !named[r.Client] {
			named[r.Client] = true
			tf.TraceEvents = append(tf.TraceEvents, metaEvent("thread_name", 0, r.Client, label))
		}
		tf.TraceEvents = append(tf.TraceEvents, event{
			Name: label,
			Ph:   "X",
			Ts:   float64(r.Start) / float64(time.Microsecond),
			Dur:  float64(r.End-r.Start) / float64(time.Microsecond),
			Pid:  0,
			Tid:  r.Client,
			Args: map[string]any{
				"jobID":           r.JobID,
				"gpuDurationUs":   r.GPUDuration.Microseconds(),
				"activeJobs":      r.ActiveJobs,
				"overflowKernels": r.OverflowKernels,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
