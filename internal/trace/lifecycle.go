package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"olympian/internal/obs"
	"olympian/internal/telemetry"
)

// Track layout for lifecycle traces: one Chrome-trace process per device
// (pid 0 is the cluster layer, pid d+1 is device d), and within each
// process one track per request class plus fixed tracks for the executor,
// the GPU, and the client harness.
const (
	tidInteractive = 1 // serving/cluster spans for the interactive class
	tidBatch       = 2 // serving/cluster spans for the batch class
	tidControl     = 3 // classless control events (limits, drains, routes)
	tidClients     = 4 // workload harness (client batches, run markers)
	tidExecutor    = 5 // execution engine (jobs, retries, aborts)
	tidGPU         = 6 // device occupancy (H2D, kernels, stalls)
	tidTelemetry   = 7 // SLO burn-rate alert transitions (telemetry plane)
)

// lifecyclePid maps an obs device index to a Chrome-trace process id.
func lifecyclePid(device int16) int {
	if device < 0 {
		return 0
	}
	return int(device) + 1
}

// lifecycleTid maps (layer, class) to a track within the process.
func lifecycleTid(layer obs.Layer, class int8) int {
	switch layer {
	case obs.LayerGPU:
		return tidGPU
	case obs.LayerExecutor:
		return tidExecutor
	case obs.LayerHarness:
		return tidClients
	case obs.LayerTelemetry:
		return tidTelemetry
	}
	// Serving, cluster, and overload events ride the class tracks.
	switch class {
	case 1:
		return tidInteractive
	case 0:
		return tidBatch
	default:
		return tidControl
	}
}

func tidName(tid int) string {
	switch tid {
	case tidInteractive:
		return "interactive"
	case tidBatch:
		return "batch"
	case tidControl:
		return "control"
	case tidClients:
		return "clients"
	case tidExecutor:
		return "executor"
	case tidGPU:
		return "gpu"
	case tidTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("track-%d", tid)
	}
}

func pidName(pid int) string {
	if pid == 0 {
		return "cluster"
	}
	return fmt.Sprintf("device-%d", pid-1)
}

// lifecycleArgs annotates a lifecycle event. The span id "r<req>.<seq>" is
// the deterministic identity ISSUE 5 asks for: request ID plus per-request
// monotonic counter.
type lifecycleArgs struct {
	ID    string `json:"id,omitempty"`
	Req   int64  `json:"req"`
	Layer string `json:"layer"`
	Arg   int64  `json:"arg"`
}

func spanArgs(req int32, seq uint32, layer obs.Layer, arg int64) lifecycleArgs {
	a := lifecycleArgs{Req: int64(req), Layer: layer.String(), Arg: arg}
	if req >= 0 {
		a.ID = fmt.Sprintf("r%d.%d", req, seq)
	}
	return a
}

// WriteLifecycle renders an obs.Trace as a request-lifecycle Chrome/Perfetto
// trace: one process per device, one track per request class (plus executor,
// GPU, and client tracks), spans as complete slices and point events as
// thread-scoped instants. Output is a deterministic function of the trace:
// metadata is sorted and events keep recorded order, so same-seed runs
// render byte-identically.
func WriteLifecycle(w io.Writer, tr *obs.Trace) error {
	tf := lifecycleFile(tr)
	return json.NewEncoder(w).Encode(tf)
}

// lifecycleFile builds the lifecycle trace's event list; WriteLifecycle
// encodes it directly and WriteLifecycleTimeline appends counter tracks
// first.
func lifecycleFile(tr *obs.Trace) traceFile {
	tf := traceFile{
		// Explicitly empty: a nil slice marshals to JSON null, which
		// Perfetto rejects.
		TraceEvents:     []event{},
		DisplayTimeUnit: "ms",
		Metadata: map[string]string{
			"source": "olympian lifecycle trace",
			"format": "one process per device; class, executor, gpu, and client tracks per process",
		},
	}

	// Collect every (pid, tid) pair in use so each track gets a label.
	type track struct{ pid, tid int }
	used := map[track]bool{}
	for _, s := range tr.Spans {
		used[track{lifecyclePid(s.Device), lifecycleTid(s.Layer, s.Class)}] = true
	}
	for _, p := range tr.Instants {
		used[track{lifecyclePid(p.Device), lifecycleTid(p.Layer, p.Class)}] = true
	}
	tracks := make([]track, 0, len(used))
	for tk := range used {
		tracks = append(tracks, tk)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	namedPid := map[int]bool{}
	for _, tk := range tracks {
		if !namedPid[tk.pid] {
			namedPid[tk.pid] = true
			tf.TraceEvents = append(tf.TraceEvents, metaEvent("process_name", tk.pid, 0, pidName(tk.pid)))
		}
		tf.TraceEvents = append(tf.TraceEvents, metaEvent("thread_name", tk.pid, tk.tid, tidName(tk.tid)))
	}

	us := func(t int64) float64 { return float64(t) / float64(time.Microsecond) }
	for _, s := range tr.Spans {
		tf.TraceEvents = append(tf.TraceEvents, event{
			Name: s.Name,
			Ph:   "X",
			Ts:   us(int64(s.Start)),
			Dur:  us(int64(s.End - s.Start)),
			Pid:  lifecyclePid(s.Device),
			Tid:  lifecycleTid(s.Layer, s.Class),
			Args: spanArgs(s.Req, s.Seq, s.Layer, s.Arg),
		})
	}
	for _, p := range tr.Instants {
		tf.TraceEvents = append(tf.TraceEvents, event{
			Name: p.Name,
			Ph:   "i",
			Ts:   us(int64(p.At)),
			Pid:  lifecyclePid(p.Device),
			Tid:  lifecycleTid(p.Layer, p.Class),
			S:    "t",
			Args: lifecycleArgs{Req: int64(p.Req), Layer: p.Layer.String(), Arg: p.Arg},
		})
	}
	return tf
}

// WriteLifecycleTimeline renders the lifecycle trace plus the telemetry
// plane's burn-rate series as Perfetto counter tracks ("C" events on the
// cluster process): one counter per SLO/rule pair, sampled at every retained
// tick, shifted by the timeline's trace offset so the counters overlay the
// run whose alerts were logged. Alert transitions themselves already ride
// the lifecycle trace as telemetry-track instants (Timeline.LogAlerts), so
// the counters and the instants line up. Output stays a deterministic
// function of (trace, timeline): counter keys render in sorted order.
func WriteLifecycleTimeline(w io.Writer, tr *obs.Trace, tl *telemetry.Timeline) error {
	tf := lifecycleFile(tr)
	if tl != nil {
		burns := tl.Burns()
		keys := make([]string, 0, len(burns))
		for k := range burns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		off := int64(tl.TraceOffset())
		us := func(t int64) float64 { return float64(t) / float64(time.Microsecond) }
		for _, k := range keys {
			name := "burn:" + k
			for i, v := range burns[k] {
				tf.TraceEvents = append(tf.TraceEvents, event{
					Name: name,
					Ph:   "C",
					Ts:   us(off + int64(tl.TickTime(tl.Start+i))),
					Pid:  0,
					Tid:  0,
					Args: map[string]float64{"burn": v},
				})
			}
		}
	}
	return json.NewEncoder(w).Encode(tf)
}
