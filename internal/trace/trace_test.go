package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"olympian/internal/core"
	"olympian/internal/sim"
)

func TestWriteChromeTrace(t *testing.T) {
	records := []core.QuantumRecord{
		{Client: 0, JobID: 1, Start: 0, End: sim.Time(1200 * time.Microsecond), GPUDuration: time.Millisecond, ActiveJobs: 2},
		{Client: 1, JobID: 2, Start: sim.Time(1200 * time.Microsecond), End: sim.Time(2500 * time.Microsecond), GPUDuration: 1100 * time.Microsecond, ActiveJobs: 2, OverflowKernels: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, records, map[int]string{0: "inception"}); err != nil {
		t.Fatal(err)
	}
	type traceEvent struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
		Args struct {
			Name            string `json:"name"`
			OverflowKernels int    `json:"overflowKernels"`
		} `json:"args"`
	}
	var decoded struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	var slices, meta []traceEvent
	for _, ev := range decoded.TraceEvents {
		switch ev.Ph {
		case "X":
			slices = append(slices, ev)
		case "M":
			meta = append(meta, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if len(slices) != 2 {
		t.Fatalf("%d slice events", len(slices))
	}
	ev0 := slices[0]
	if ev0.Name != "inception" || ev0.Ts != 0 || ev0.Dur != 1200 {
		t.Fatalf("event 0 %+v", ev0)
	}
	ev1 := slices[1]
	if ev1.Name != "client-1" || ev1.Tid != 1 || ev1.Args.OverflowKernels != 1 {
		t.Fatalf("event 1 %+v", ev1)
	}
	// Metadata events label the process and each client track.
	labels := map[string]string{}
	for _, ev := range meta {
		labels[fmt.Sprintf("%s/%d", ev.Name, ev.Tid)] = ev.Args.Name
	}
	if labels["process_name/0"] != "olympian" {
		t.Fatalf("missing process_name metadata: %v", labels)
	}
	if labels["thread_name/0"] != "inception" || labels["thread_name/1"] != "client-1" {
		t.Fatalf("missing thread_name metadata: %v", labels)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("display unit %q", decoded.DisplayTimeUnit)
	}
}

// TestWriteChromeTraceEmpty is the regression test for the nil-slice bug:
// with no records, traceEvents must still be a JSON array (a nil Go slice
// marshals to null, which Perfetto rejects).
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.TraceEvents) == 0 || decoded.TraceEvents[0] != '[' {
		t.Fatalf("traceEvents is not a JSON array: %s", decoded.TraceEvents)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(decoded.TraceEvents, &events); err != nil {
		t.Fatalf("traceEvents does not decode as an array: %v", err)
	}
}
