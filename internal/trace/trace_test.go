package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"olympian/internal/core"
	"olympian/internal/sim"
)

func TestWriteChromeTrace(t *testing.T) {
	records := []core.QuantumRecord{
		{Client: 0, JobID: 1, Start: 0, End: sim.Time(1200 * time.Microsecond), GPUDuration: time.Millisecond, ActiveJobs: 2},
		{Client: 1, JobID: 2, Start: sim.Time(1200 * time.Microsecond), End: sim.Time(2500 * time.Microsecond), GPUDuration: 1100 * time.Microsecond, ActiveJobs: 2, OverflowKernels: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, records, map[int]string{0: "inception"}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
			Args struct {
				OverflowKernels int `json:"overflowKernels"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("%d events", len(decoded.TraceEvents))
	}
	ev0 := decoded.TraceEvents[0]
	if ev0.Name != "inception" || ev0.Ph != "X" || ev0.Ts != 0 || ev0.Dur != 1200 {
		t.Fatalf("event 0 %+v", ev0)
	}
	ev1 := decoded.TraceEvents[1]
	if ev1.Name != "client-1" || ev1.Tid != 1 || ev1.Args.OverflowKernels != 1 {
		t.Fatalf("event 1 %+v", ev1)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("display unit %q", decoded.DisplayTimeUnit)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatal("missing traceEvents key")
	}
}
