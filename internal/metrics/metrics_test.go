package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"olympian/internal/overload"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	// Sample standard deviation of 1..4 is sqrt(5/3).
	if want := math.Sqrt(5.0 / 3.0); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
	if got := s.Spread(); got != 4 {
		t.Fatalf("spread %v", got)
	}
	if got := s.RelStd(); math.Abs(got-s.Std/2.5) > 1e-12 {
		t.Fatalf("rel std %v", got)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Std != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSpreadWithZeroMin(t *testing.T) {
	s := Summarize([]float64{0, 5})
	if !math.IsInf(s.Spread(), 1) {
		t.Fatalf("spread with zero min = %v, want +Inf", s.Spread())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Fatalf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestCDFAndFractionBelow(t *testing.T) {
	xs := []float64{3, 1, 2}
	cdf := CDF(xs)
	if len(cdf) != 3 || cdf[0].Value != 1 || cdf[2].Frac != 1.0 {
		t.Fatalf("cdf %+v", cdf)
	}
	if f := FractionBelow(xs, 2.5); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Fatalf("fraction below 2.5 = %v", f)
	}
	if f := FractionBelow(nil, 1); f != 0 {
		t.Fatalf("fraction of empty = %v", f)
	}
}

func TestFinishSetOrderingAndGrouping(t *testing.T) {
	var fs FinishSet
	fs.Add(2, "b", 20*time.Second)
	fs.Add(0, "a", 10*time.Second)
	fs.Add(1, "b", 30*time.Second)
	durs := fs.Durations()
	want := []time.Duration{10 * time.Second, 30 * time.Second, 20 * time.Second}
	for i := range want {
		if durs[i] != want[i] {
			t.Fatalf("durations %v", durs)
		}
	}
	byModel := fs.ByModel()
	if len(byModel["b"]) != 2 || len(byModel["a"]) != 1 {
		t.Fatalf("byModel %v", byModel)
	}
	if s := fs.Summary(); s.N != 3 || s.Max != 30 {
		t.Fatalf("summary %+v", s)
	}
}

func TestQuantumLog(t *testing.T) {
	q := NewQuantumLog()
	q.AddQuantum(1, 1000*time.Microsecond)
	q.AddQuantum(1, 1400*time.Microsecond)
	q.AddQuantum(0, 1200*time.Microsecond)
	q.AddInterval(2 * time.Millisecond)
	if clients := q.Clients(); len(clients) != 2 || clients[0] != 0 {
		t.Fatalf("clients %v", clients)
	}
	s := q.ClientSummary(1)
	if s.N != 2 || s.Mean != 1200 {
		t.Fatalf("client summary %+v", s)
	}
	if got := q.IntervalSummary(); got.N != 1 {
		t.Fatalf("interval summary %+v", got)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatSeconds(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("FormatSeconds = %q", got)
	}
	if got := FormatMicros(1500 * time.Microsecond); got != "1500us" {
		t.Fatalf("FormatMicros = %q", got)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(raw, q)
			if v < prev-1e-9 || v < sorted[0]-1e-9 || v > sorted[len(sorted)-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize mean is bounded by min and max.
func TestPropertySummaryBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		for _, x := range raw {
			// Skip values whose sums overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(raw)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedMergeAndString(t *testing.T) {
	var d Degraded
	if d.Any() {
		t.Fatal("zero Degraded reports Any")
	}
	if d.String() != "clean" {
		t.Fatalf("zero Degraded renders %q", d.String())
	}
	d.Merge(Degraded{KernelFaults: 2, Drops: 1})
	d.Merge(Degraded{KernelFaults: 1, BatchRetries: 3, DeadlineMisses: 4})
	want := Degraded{KernelFaults: 3, BatchRetries: 3, Drops: 1, DeadlineMisses: 4}
	if d != want {
		t.Fatalf("merged %+v, want %+v", d, want)
	}
	if !d.Any() {
		t.Fatal("non-zero Degraded reports clean")
	}
	s := d.String()
	for _, frag := range []string{"kernelFaults=3", "batchRetries=3", "drops=1", "deadlineMisses=4"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "stalls") {
		t.Fatalf("String() = %q renders zero field", s)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// A single sample is every quantile.
	one := []float64{7}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Quantile(one, q); got != 7 {
			t.Fatalf("quantile %v of single sample = %v, want 7", q, got)
		}
	}
	// Duplicate-heavy samples: interpolation between equal neighbors must
	// return the duplicated value exactly.
	dups := []float64{5, 5, 5, 5, 9}
	if got := Quantile(dups, 0.5); got != 5 {
		t.Fatalf("median of duplicate-heavy sample = %v, want 5", got)
	}
	if got := Quantile(dups, 1); got != 9 {
		t.Fatalf("max of duplicate-heavy sample = %v, want 9", got)
	}
	// Out-of-range q clamps to the extremes.
	if got := Quantile(dups, -0.5); got != 5 {
		t.Fatalf("q<0 = %v, want min", got)
	}
	if got := Quantile(dups, 1.5); got != 9 {
		t.Fatalf("q>1 = %v, want max", got)
	}
	// Interpolation lands between distinct neighbors.
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Fatalf("q0.25 of {0,10} = %v, want 2.5", got)
	}
}

func TestPercentilesOfEdgeCases(t *testing.T) {
	if got := PercentilesOf(nil); got != (Percentiles{}) {
		t.Fatalf("empty sample = %+v, want zero value", got)
	}
	if got := PercentilesOf([]float64{3}); got.N != 1 || got.P50 != 3 || got.P95 != 3 || got.P99 != 3 {
		t.Fatalf("single sample = %+v, want all quantiles 3", got)
	}
	got := PercentilesOf([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100})
	if got.N != 10 || got.P50 != 1 {
		t.Fatalf("duplicate-heavy sample = %+v, want p50 = 1", got)
	}
	if got.P95 < got.P50 || got.P99 < got.P95 {
		t.Fatalf("percentiles not monotone: %+v", got)
	}
	// PercentilesOf must not mutate its input.
	xs := []float64{3, 1, 2}
	PercentilesOf(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestClassCountsMergeAndAny(t *testing.T) {
	var c ClassCounts
	if c.Any() {
		t.Fatal("zero ClassCounts reports Any")
	}
	c.Merge(ClassCounts{Submitted: 4, Completed: 2, Shed: 1})
	c.Merge(ClassCounts{Submitted: 1, Expired: 1, DeadlineMisses: 3})
	want := ClassCounts{Submitted: 5, Completed: 2, Shed: 1, Expired: 1, DeadlineMisses: 3}
	if c != want {
		t.Fatalf("merged %+v, want %+v", c, want)
	}
	if !c.Any() {
		t.Fatal("non-zero ClassCounts reports empty")
	}
}

func TestByClassMergeAndDegradedComparability(t *testing.T) {
	a := Degraded{ByClass: ByClass{
		overload.Batch:       {Submitted: 3, Shed: 2},
		overload.Interactive: {Submitted: 1, Completed: 1},
	}}
	b := Degraded{ByClass: ByClass{
		overload.Batch:       {Submitted: 1, Completed: 1},
		overload.Interactive: {Submitted: 2, DeadlineMisses: 1},
	}}
	a.Merge(b)
	if got := a.ByClass[overload.Batch]; got != (ClassCounts{Submitted: 4, Completed: 1, Shed: 2}) {
		t.Fatalf("batch class merged to %+v", got)
	}
	if got := a.ByClass[overload.Interactive]; got != (ClassCounts{Submitted: 3, Completed: 1, DeadlineMisses: 1}) {
		t.Fatalf("interactive class merged to %+v", got)
	}
	// Degraded must stay comparable with ==: determinism probes depend on it.
	c := a
	if c != a {
		t.Fatal("Degraded copies with identical ByClass compare unequal")
	}
	c.ByClass[overload.Batch].Shed++
	if c == a {
		t.Fatal("Degraded copies with different ByClass compare equal")
	}
}

func TestDegradedStringRendersClassesAndNewCounters(t *testing.T) {
	d := Degraded{
		RetryDenied:    2,
		AdmissionSheds: 5,
		Evictions:      1,
		Canceled:       3,
	}
	d.ByClass[overload.Interactive] = ClassCounts{Submitted: 10, Completed: 8, Shed: 1, DeadlineMisses: 1}
	s := d.String()
	for _, frag := range []string{
		"retryDenied=2", "admissionSheds=5", "evictions=1", "canceled=3",
		"interactive[done=8 shed=1 expired=0 failed=0 miss=1 of 10]",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "batch[") {
		t.Fatalf("String() = %q renders the traffic-free batch class", s)
	}
}

func TestTokenPercentilesOf(t *testing.T) {
	tp := TokenPercentilesOf([]float64{0.1, 0.2, 0.3}, []float64{0.01, 0.02})
	if tp.TTFT.N != 3 || tp.TPOT.N != 2 {
		t.Fatalf("sample counts: %+v", tp)
	}
	if tp.TTFT.P50 != 0.2 {
		t.Fatalf("ttft p50 = %v", tp.TTFT.P50)
	}
	empty := TokenPercentilesOf(nil, nil)
	if empty != (TokenPercentiles{}) {
		t.Fatalf("empty samples must yield zero value: %+v", empty)
	}
	if empty.String() == "" || tp.String() == "" {
		t.Fatalf("String must render")
	}
}
