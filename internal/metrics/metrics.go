// Package metrics provides the summary statistics and recording structures
// the evaluation harness uses: finish-time records, per-quantum GPU
// durations, scheduling-interval logs, CDFs, and utilization aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"olympian/internal/overload"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// RelStd returns the standard deviation as a fraction of the mean (the
// paper reports per-quantum duration spread this way, e.g. "4.9% to 10.1%").
func (s Summary) RelStd() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// Spread returns Max/Min — the paper's headline unpredictability metric
// ("finish times can differ by up to 1.7x").
func (s Summary) Spread() float64 {
	if s.Min == 0 {
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// DurationsToSeconds converts durations to float seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// DurationsToMicros converts durations to float microseconds.
func DurationsToMicros(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Microsecond)
	}
	return out
}

// SummarizeDurations summarizes durations in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	return Summarize(DurationsToSeconds(ds))
}

// Quantile returns the q-quantile (0..1) of xs by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Percentiles summarises a latency sample by its p50/p95/p99 quantiles (in
// the sample's unit, conventionally seconds). The zero value means "no
// samples".
type Percentiles struct {
	N             int
	P50, P95, P99 float64
}

// Ok reports whether the summary holds any samples. Report call sites must
// branch on it before forming ratios (p99/p50 of an empty summary is 0/0).
func (p Percentiles) Ok() bool { return p.N > 0 }

// PercentilesOfOk computes the p50/p95/p99 of xs, with an explicit ok that is
// false on an empty sample. Prefer this at call sites that go on to divide by
// a quantile; PercentilesOf keeps the zero-value-on-empty contract because
// differential tests DeepEqual whole Stats structs and NaNs never compare
// equal.
func PercentilesOfOk(xs []float64) (Percentiles, bool) {
	p := PercentilesOf(xs)
	return p, p.Ok()
}

// PercentilesOf computes the p50/p95/p99 of xs. An empty sample yields the
// zero value (not NaNs), so reports can render absent models cleanly.
func PercentilesOf(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentiles{
		N:   len(sorted),
		P50: Quantile(sorted, 0.50),
		P95: Quantile(sorted, 0.95),
		P99: Quantile(sorted, 0.99),
	}
}

// String renders the percentiles in milliseconds.
func (p Percentiles) String() string {
	if p.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%.1fms p95=%.1fms p99=%.1fms",
		p.N, p.P50*1e3, p.P95*1e3, p.P99*1e3)
}

// TokenPercentiles summarises the two token-level latency metrics of an
// autoregressive serving run: time-to-first-token (arrival to first emitted
// token — prefill queueing plus prefill plus any KV-transfer wait) and
// time-per-output-token (mean inter-token gap per request over its delivered
// tokens). Both in seconds; zero values mean "no samples".
type TokenPercentiles struct {
	TTFT Percentiles
	TPOT Percentiles
}

// Ok reports whether either token metric holds samples.
func (tp TokenPercentiles) Ok() bool { return tp.TTFT.Ok() || tp.TPOT.Ok() }

// TokenPercentilesOf computes TTFT/TPOT percentiles from per-request samples
// in seconds. The slices are independent: a one-token request contributes a
// TTFT sample but no TPOT sample.
func TokenPercentilesOf(ttfts, tpots []float64) TokenPercentiles {
	return TokenPercentiles{TTFT: PercentilesOf(ttfts), TPOT: PercentilesOf(tpots)}
}

// TokenPercentilesOfOk is TokenPercentilesOf with an explicit ok that is
// false when both samples are empty.
func TokenPercentilesOfOk(ttfts, tpots []float64) (TokenPercentiles, bool) {
	tp := TokenPercentilesOf(ttfts, tpots)
	return tp, tp.Ok()
}

// String renders both metrics in milliseconds.
func (tp TokenPercentiles) String() string {
	return fmt.Sprintf("ttft[%s] tpot[%s]", tp.TTFT, tp.TPOT)
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF of xs.
func CDF(xs []float64) []CDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Frac: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// ClassCounts tallies one priority class's outcomes at the serving layer.
type ClassCounts struct {
	// Submitted counts arrivals of the class.
	Submitted int
	// Completed counts successful completions (the class's goodput).
	Completed int
	// Shed counts requests dropped by admission control: limiter sheds,
	// queue-full drops, and priority evictions alike.
	Shed int
	// Expired counts requests dropped in queue past their deadline.
	Expired int
	// Failed counts requests that terminated with a hard failure: drained on
	// a device crash past the failover cap, aborted mid-execution, or
	// cancelled. Together with the other terminal counters it completes the
	// conservation identity Submitted = Completed + Shed + Expired + Failed
	// once a run quiesces.
	Failed int
	// DeadlineMisses counts requests served after their deadline.
	DeadlineMisses int
}

// Any reports whether the class saw any traffic.
func (c ClassCounts) Any() bool { return c != ClassCounts{} }

// Merge adds o's tallies into c.
func (c *ClassCounts) Merge(o ClassCounts) {
	c.Submitted += o.Submitted
	c.Completed += o.Completed
	c.Shed += o.Shed
	c.Expired += o.Expired
	c.Failed += o.Failed
	c.DeadlineMisses += o.DeadlineMisses
}

// ByClass indexes ClassCounts by overload.Class. It is a fixed-size array
// so Degraded stays comparable (determinism probes use ==).
type ByClass [overload.NumClasses]ClassCounts

// Merge adds o's per-class tallies into b.
func (b *ByClass) Merge(o ByClass) {
	for i := range b {
		b[i].Merge(o[i])
	}
}

// Degraded tallies a run's degraded-mode events: the faults injected into
// it, the recovery work they forced, and the requests that were shed or
// expired instead of served. A fault-free run reports the zero value.
type Degraded struct {
	// Injected faults (from the fault-injection plane).
	KernelFaults int
	DeviceStalls int
	JobAborts    int
	// DeviceCrashes and DeviceRevives count permanent-failure events and
	// completed restarts (warm-up done); CrashedBatches counts batches whose
	// execution was cut short by a crash mid-flight.
	DeviceCrashes  int
	DeviceRevives  int
	CrashedBatches int
	// Recovery actions.
	KernelRetries int
	BatchRetries  int
	BatchFailures int
	// RetryDenied counts retries refused by an exhausted retry budget.
	RetryDenied int
	// SLO-aware shedding at the serving layer.
	Drops          int // rejected at admission (bounded queue full)
	AdmissionSheds int // rejected by the AIMD adaptive admission limiter
	Evictions      int // queued low-priority work displaced by high-priority arrivals
	Expired        int // dropped in queue past their deadline
	DeadlineMisses int // served, but after their deadline
	Canceled       int // hedge losers cancelled after the duplicate won
	// ByClass breaks serving outcomes down per priority class.
	ByClass ByClass
}

// Merge adds o's tallies into d.
func (d *Degraded) Merge(o Degraded) {
	d.KernelFaults += o.KernelFaults
	d.DeviceStalls += o.DeviceStalls
	d.JobAborts += o.JobAborts
	d.DeviceCrashes += o.DeviceCrashes
	d.DeviceRevives += o.DeviceRevives
	d.CrashedBatches += o.CrashedBatches
	d.KernelRetries += o.KernelRetries
	d.BatchRetries += o.BatchRetries
	d.BatchFailures += o.BatchFailures
	d.RetryDenied += o.RetryDenied
	d.Drops += o.Drops
	d.AdmissionSheds += o.AdmissionSheds
	d.Evictions += o.Evictions
	d.Expired += o.Expired
	d.DeadlineMisses += o.DeadlineMisses
	d.Canceled += o.Canceled
	d.ByClass.Merge(o.ByClass)
}

// Any reports whether any degraded-mode event occurred.
func (d Degraded) Any() bool { return d != Degraded{} }

// String renders the non-zero tallies compactly.
func (d Degraded) String() string {
	if !d.Any() {
		return "clean"
	}
	parts := make([]string, 0, 16)
	add := func(name string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("kernelFaults", d.KernelFaults)
	add("stalls", d.DeviceStalls)
	add("aborts", d.JobAborts)
	add("crashes", d.DeviceCrashes)
	add("revives", d.DeviceRevives)
	add("crashedBatches", d.CrashedBatches)
	add("kernelRetries", d.KernelRetries)
	add("batchRetries", d.BatchRetries)
	add("batchFailures", d.BatchFailures)
	add("retryDenied", d.RetryDenied)
	add("drops", d.Drops)
	add("admissionSheds", d.AdmissionSheds)
	add("evictions", d.Evictions)
	add("expired", d.Expired)
	add("deadlineMisses", d.DeadlineMisses)
	add("canceled", d.Canceled)
	for cls := range d.ByClass {
		c := d.ByClass[cls]
		if c.Any() {
			parts = append(parts, fmt.Sprintf("%s[done=%d shed=%d expired=%d failed=%d miss=%d of %d]",
				overload.Class(cls), c.Completed, c.Shed, c.Expired, c.Failed, c.DeadlineMisses, c.Submitted))
		}
	}
	return strings.Join(parts, " ")
}

// Availability summarizes one device's crash-recovery behaviour over a run.
// It is comparable (determinism probes use ==). The zero value means the
// device never crashed.
type Availability struct {
	// Crashes counts crash events; Revives counts completed restarts.
	Crashes int
	Revives int
	// Downtime is the total unschedulable time: every closed outage plus the
	// open one at the end of the run.
	Downtime time.Duration
	// MTTR is the mean time to recovery over completed restarts (crash to
	// schedulable again, including the recovery delay and warm-up copy).
	MTTR time.Duration
	// Frac is the availability fraction: 1 - Downtime/elapsed.
	Frac float64
}

// String renders availability compactly.
func (a Availability) String() string {
	if a.Crashes == 0 {
		return "up"
	}
	return fmt.Sprintf("crashes=%d revives=%d down=%s mttr=%s avail=%.4f",
		a.Crashes, a.Revives, a.Downtime, a.MTTR, a.Frac)
}

// FinishRecord is one client's completion time.
type FinishRecord struct {
	Client int
	Model  string
	Finish time.Duration
}

// FinishSet aggregates per-client finish times for one run.
type FinishSet struct {
	Label   string
	Records []FinishRecord
}

// Add appends a record.
func (f *FinishSet) Add(client int, model string, finish time.Duration) {
	f.Records = append(f.Records, FinishRecord{Client: client, Model: model, Finish: finish})
}

// Durations returns the finish times in client order.
func (f *FinishSet) Durations() []time.Duration {
	sorted := append([]FinishRecord(nil), f.Records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Client < sorted[j].Client })
	out := make([]time.Duration, len(sorted))
	for i, r := range sorted {
		out[i] = r.Finish
	}
	return out
}

// Summary summarizes the finish times in seconds.
func (f *FinishSet) Summary() Summary { return SummarizeDurations(f.Durations()) }

// ByModel groups finish durations by model name.
func (f *FinishSet) ByModel() map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for _, r := range f.Records {
		out[r.Model] = append(out[r.Model], r.Finish)
	}
	return out
}

// QuantumLog records per-quantum GPU durations per client (Figures 14/16)
// and the wall durations of scheduling intervals (Figure 12).
type QuantumLog struct {
	perClient map[int][]time.Duration
	intervals []time.Duration
}

// NewQuantumLog returns an empty log.
func NewQuantumLog() *QuantumLog {
	return &QuantumLog{perClient: make(map[int][]time.Duration)}
}

// AddQuantum records one quantum's GPU duration for a client.
func (q *QuantumLog) AddQuantum(client int, gpuDur time.Duration) {
	q.perClient[client] = append(q.perClient[client], gpuDur)
}

// AddInterval records the wall duration of one scheduling interval.
func (q *QuantumLog) AddInterval(d time.Duration) {
	q.intervals = append(q.intervals, d)
}

// Clients returns the client ids with recorded quanta, sorted.
func (q *QuantumLog) Clients() []int {
	out := make([]int, 0, len(q.perClient))
	for c := range q.perClient {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ClientQuanta returns the recorded quanta for one client.
func (q *QuantumLog) ClientQuanta(client int) []time.Duration { return q.perClient[client] }

// ClientSummary summarizes a client's per-quantum GPU durations in
// microseconds.
func (q *QuantumLog) ClientSummary(client int) Summary {
	return Summarize(DurationsToMicros(q.perClient[client]))
}

// Intervals returns the scheduling-interval durations.
func (q *QuantumLog) Intervals() []time.Duration { return q.intervals }

// IntervalSummary summarizes scheduling-interval durations in seconds.
func (q *QuantumLog) IntervalSummary() Summary {
	return SummarizeDurations(q.intervals)
}

// FormatSeconds renders a duration in seconds with two decimals, the
// paper's finish-time format.
func FormatSeconds(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// FormatMicros renders a duration in whole microseconds.
func FormatMicros(d time.Duration) string {
	return fmt.Sprintf("%dus", d.Microseconds())
}
