// Package executor implements the TF-Serving execution engine the paper
// extends: Algorithm 1's processing loop, the shared CPU thread pool, and
// the gang-of-threads job model.
//
// A job (one Session::Run of a model graph) is driven by a gang of simulated
// CPU threads. The session thread traverses the graph breadth-first; each
// asynchronous (GPU-backed) child is handed to a thread fetched from the
// shared pool, which submits the node's kernel to the GPU and blocks until
// it completes. The engine itself is scheduler-agnostic: a Hooks
// implementation observes job registration, node boundaries (the paper's
// yield points, Algorithm 2 line 12) and node completion (cost accumulation,
// lines 14-18). Vanilla TF-Serving is the engine with NopHooks.
package executor

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"olympian/internal/faults"
	"olympian/internal/gpu"
	"olympian/internal/graph"
	"olympian/internal/obs"
	"olympian/internal/sim"
)

// Job is one in-flight Session::Run: a model graph being evaluated for one
// input batch on behalf of a client.
type Job struct {
	// ID uniquely identifies the job within an engine.
	ID int
	// Client is the submitting client's id (stable across a client's jobs).
	Client int
	// Graph is the model dataflow graph to execute.
	Graph *graph.Graph
	// Weight is the weighted-fair-sharing weight (>= 1).
	Weight int
	// Priority orders jobs under priority scheduling (higher runs first).
	Priority int
	// Deadline, if nonzero, is the job's completion target on the virtual
	// clock; deadline-aware policies (EDF) order by it.
	Deadline sim.Time

	// StartAt and EndAt record the job's execution interval.
	StartAt, EndAt sim.Time

	wg       *sim.WaitGroup
	inflight *sim.Semaphore

	aborted bool
	err     error
}

// Aborted reports whether the job was aborted before completing.
func (j *Job) Aborted() bool { return j.aborted }

// Err returns the failure that aborted the job, or nil on success.
func (j *Job) Err() error { return j.err }

// Hooks is the scheduler interface: the points at which Olympian (or any
// other policy) intercepts the processing loop.
type Hooks interface {
	// Register is called when a job starts (Algorithm 2 line 4).
	Register(p *sim.Proc, job *Job)
	// Deregister is called when a job completes (line 7).
	Deregister(p *sim.Proc, job *Job)
	// Yield is called before each node executes (line 12); it may suspend
	// the calling thread until its job is granted GPU access.
	Yield(p *sim.Proc, job *Job)
	// NodeDone is called after each node executes (lines 14-18): the point
	// where GPU cost is accumulated and quantum expiry detected.
	NodeDone(p *sim.Proc, job *Job, n *graph.Node)
}

// JobCanceller is an optional extension of Hooks: a scheduler that parks
// gang threads (Olympian's Yield) must implement it so that an aborted
// job's threads are woken and can unwind instead of waiting for a token
// that may never come.
type JobCanceller interface {
	// Cancel is called once when job is aborted; implementations wake any
	// of the job's parked threads.
	Cancel(p *sim.Proc, job *Job)
}

// NopHooks is vanilla TF-Serving: no scheduling beyond the GPU driver's.
type NopHooks struct{}

var _ Hooks = NopHooks{}

// Register implements Hooks.
func (NopHooks) Register(*sim.Proc, *Job) {}

// Deregister implements Hooks.
func (NopHooks) Deregister(*sim.Proc, *Job) {}

// Yield implements Hooks.
func (NopHooks) Yield(*sim.Proc, *Job) {}

// NodeDone implements Hooks.
func (NopHooks) NodeDone(*sim.Proc, *Job, *graph.Node) {}

// Config tunes the engine.
type Config struct {
	// ThreadPoolSize caps the shared CPU thread pool (0 means the
	// TF-Serving default).
	ThreadPoolSize int
	// Jitter is the relative standard deviation applied to node durations,
	// modelling OS and clock noise. Zero disables it.
	Jitter float64
	// NodeOverhead is per-node middleware bookkeeping time on the managing
	// CPU thread.
	NodeOverhead time.Duration
	// OnlineProfilingTax, when nonzero, models running TensorFlow's CUPTI
	// cost profiler online. Instrumentation cost is proportional to the
	// number of graph nodes, so kernels of a graph with N nodes and total
	// GPU work W are stretched by the factor 1 + Tax*N/W — reproducing the
	// paper's Figure 6 finding that online profiling inflates execution
	// times by 21-29% depending on the model.
	OnlineProfilingTax time.Duration
	// MaxInflight caps the kernels a single job may have queued or running
	// on the device at once (the stream-depth limit of the runtime). It
	// bounds the quantum overflow of Figures 10/15 to a handful of nodes.
	// Zero means DefaultMaxInflight.
	MaxInflight int
	// KernelSliceDur, when nonzero, enables the kernel-slicing baseline the
	// paper's related work describes ([2,4,19,23,31,33]): each GPU kernel is
	// split into slices of at most this duration with a scheduler yield
	// point between slices, giving sub-node preemption granularity.
	KernelSliceDur time.Duration
	// KernelSlicePenalty is the state save/restore cost added to every
	// slice after the first — the expensive part of kernel-level
	// preemption that Olympian's node-boundary switching avoids.
	KernelSlicePenalty time.Duration
	// Faults, when non-nil, injects job aborts at yield points; kernels
	// failed by the same injector at the device are retried here.
	Faults *faults.Injector
	// KernelRetries caps resubmissions of a transiently failed kernel
	// before the whole job is aborted. Zero means DefaultKernelRetries.
	KernelRetries int
	// Obs, when non-nil, records job spans, kernel retries, and aborts to
	// the lifecycle trace. Nil keeps the zero-cost disabled path.
	Obs *obs.Recorder
	// Device is the device index used in Obs track layout.
	Device int
}

// DefaultKernelRetries is how often a transiently failed kernel is
// relaunched before its job is given up on.
const DefaultKernelRetries = 3

// DefaultMaxInflight matches the small per-session kernel pipeline depth of
// the TensorFlow runtime, which keeps switch-time overflow at the 2-3
// kernels the paper reports.
const DefaultMaxInflight = 2

// DefaultThreadPoolSize matches TF-Serving's large default inter-op pool.
const DefaultThreadPoolSize = 4000

// Engine executes jobs against one GPU device.
type Engine struct {
	env   *sim.Env
	dev   *gpu.Device
	cfg   Config
	hooks Hooks
	pool  *ThreadPool
	rng   *rand.Rand // nil: fall back to the environment's shared source

	jobSeq        int
	taxOf         map[*graph.Graph]float64
	kernelRetries int

	jobsC    *obs.Series
	retriesC *obs.Series
	abortsC  *obs.Series

	// NodeObserver, if set, is called after every node execution with the
	// node's wall time (including queueing) and its service time (the
	// kernel's execution duration for GPU nodes, compute time for CPU
	// nodes); the offline profiler uses it to build cost models without
	// perturbing the run it measures.
	NodeObserver func(job *Job, n *graph.Node, wall, svc time.Duration)
}

// New returns an engine bound to env and dev, scheduled by hooks.
func New(env *sim.Env, dev *gpu.Device, cfg Config, hooks Hooks) *Engine {
	if hooks == nil {
		hooks = NopHooks{}
	}
	if cfg.ThreadPoolSize <= 0 {
		cfg.ThreadPoolSize = DefaultThreadPoolSize
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.KernelRetries <= 0 {
		cfg.KernelRetries = DefaultKernelRetries
	}
	e := &Engine{
		env:   env,
		dev:   dev,
		cfg:   cfg,
		hooks: hooks,
		pool:  NewThreadPool(env, cfg.ThreadPoolSize),
		taxOf: make(map[*graph.Graph]float64),
	}
	reg := cfg.Obs.Registry()
	devLabel := strconv.Itoa(cfg.Device)
	e.jobsC = reg.Counter("olympian_executor_jobs_total", "Jobs executed.", "device", devLabel)
	e.retriesC = reg.Counter("olympian_executor_kernel_retries_total", "Transiently failed kernels relaunched.", "device", devLabel)
	e.abortsC = reg.Counter("olympian_executor_job_aborts_total", "Jobs aborted.", "device", devLabel)
	if dev != nil {
		dev.Observe(cfg.Obs, cfg.Device)
	}
	return e
}

// Env returns the engine's simulation environment.
func (e *Engine) Env() *sim.Env { return e.env }

// Device returns the engine's GPU device.
func (e *Engine) Device() *gpu.Device { return e.dev }

// Pool returns the engine's shared thread pool.
func (e *Engine) Pool() *ThreadPool { return e.pool }

// Hooks returns the engine's scheduler hooks.
func (e *Engine) Hooks() Hooks { return e.hooks }

// KernelRetries returns how many transiently failed kernels were
// relaunched so far.
func (e *Engine) KernelRetries() int { return e.kernelRetries }

// AbortJob marks job as failed with err and unwinds its gang: the
// scheduler's Cancel hook (if implemented) wakes any parked threads, every
// gang thread skips its remaining work at the next check point, and Run
// deregisters the job through the normal path — so the scheduling token is
// reclaimed and never stranded on an aborted holder.
func (e *Engine) AbortJob(p *sim.Proc, job *Job, err error) {
	if job.aborted {
		return
	}
	job.aborted = true
	job.err = err
	e.abortsC.Inc()
	e.cfg.Obs.Instant(obs.LayerExecutor, "job_abort", job.ID, obs.NoClass, e.cfg.Device, int64(job.Client))
	if c, ok := e.hooks.(JobCanceller); ok {
		c.Cancel(p, job)
	}
}

// NewJob allocates a job for a client run of g.
func (e *Engine) NewJob(client int, g *graph.Graph) *Job {
	e.jobSeq++
	return &Job{
		ID:       e.jobSeq,
		Client:   client,
		Graph:    g,
		Weight:   1,
		wg:       e.env.NewWaitGroup(),
		inflight: e.env.NewSemaphore(e.cfg.MaxInflight),
	}
}

// Run executes the job to completion on the calling process (the session
// thread), implementing Algorithm 1's SESSION::RUN.
func (e *Engine) Run(p *sim.Proc, job *Job) {
	job.StartAt = p.Now()
	span := e.cfg.Obs.StartSpan(obs.LayerExecutor, "job", job.ID, obs.NoClass, e.cfg.Device, int64(job.Client))
	e.jobsC.Inc()
	e.hooks.Register(p, job)
	e.process(p, job, job.Graph.Root)
	job.wg.Wait(p) // join the gang: all async subtrees done
	e.hooks.Deregister(p, job)
	job.EndAt = p.Now()
	e.cfg.Obs.EndSpan(span)
}

// process is Algorithm 1's PROCESS loop with the Algorithm 2 hook points
// spliced in.
func (e *Engine) process(p *sim.Proc, job *Job, root *graph.Node) {
	queue := make([]*graph.Node, 0, 64)
	queue = append(queue, root)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !job.aborted && e.cfg.Faults.JobAborts() {
			e.AbortJob(p, job, faults.ErrJobAborted)
		}
		if job.aborted {
			return
		}
		e.hooks.Yield(p, job)
		if job.aborted {
			return
		}
		e.compute(p, job, n)
		e.hooks.NodeDone(p, job, n)
		for _, child := range n.Children {
			if !child.Async {
				queue = append(queue, child)
				continue
			}
			child := child
			job.wg.Add(1)
			e.pool.Submit(job.ID, func(w *sim.Proc) {
				e.process(w, job, child)
				job.wg.Done()
			})
		}
	}
}

// compute executes a single node on the calling thread: CPU nodes burn
// simulated CPU time; GPU nodes submit a kernel and block until it
// completes (the thread "manages" the kernel, as the paper describes).
func (e *Engine) compute(p *sim.Proc, job *Job, n *graph.Node) {
	start := p.Now()
	if e.cfg.NodeOverhead > 0 {
		p.Sleep(e.cfg.NodeOverhead)
	}
	dur := e.jittered(n.Duration)
	if n.IsGPU() {
		if e.cfg.OnlineProfilingTax > 0 {
			dur = time.Duration(float64(dur) * e.profilingFactor(job.Graph))
		}
		job.inflight.Acquire(p)
		// Second yield point, on the kernel-launch side of the in-flight
		// gate: a thread that waited out other kernels here must not
		// launch while its job is switched out.
		e.hooks.Yield(p, job)
		switch {
		case job.aborted:
			// Woken by Cancel: skip the launch and let the gang unwind.
		case e.cfg.KernelSliceDur > 0 && dur > e.cfg.KernelSliceDur:
			e.computeSliced(p, job, n, dur)
		default:
			e.submitKernel(p, job, n, dur)
		}
		job.inflight.Release()
	} else {
		p.Sleep(dur)
	}
	if e.NodeObserver != nil {
		e.NodeObserver(job, n, p.Now().Sub(start), dur)
	}
}

// submitKernel launches one kernel and waits for it, relaunching on
// injected transient failures up to the configured retry cap. Exhausting
// the cap aborts the whole job: the fault is no longer transient from the
// middleware's point of view. It reports whether the kernel succeeded.
func (e *Engine) submitKernel(p *sim.Proc, job *Job, n *graph.Node, dur time.Duration) bool {
	for attempt := 0; ; attempt++ {
		k := &gpu.Kernel{
			Owner:     job.ID,
			Stream:    job.Client,
			Duration:  dur,
			Occupancy: n.Occupancy,
		}
		e.dev.Submit(k)
		k.Done.Wait(p)
		if k.Err == nil {
			return true
		}
		if errors.Is(k.Err, faults.ErrDeviceCrashed) {
			// The device is gone, not glitching: retrying against a dead
			// device would spin the retry budget on instant failures. Abort
			// immediately so the serving layer can fail the batch over.
			e.AbortJob(p, job, fmt.Errorf("executor: job %d node %d: %w", job.ID, n.ID, k.Err))
			return false
		}
		if attempt >= e.cfg.KernelRetries {
			e.AbortJob(p, job, fmt.Errorf("executor: job %d node %d: %w (gave up after %d attempts)",
				job.ID, n.ID, k.Err, attempt+1))
			return false
		}
		e.kernelRetries++
		e.retriesC.Inc()
		e.cfg.Obs.Instant(obs.LayerExecutor, "kernel_retry", job.ID, obs.NoClass, e.cfg.Device, int64(attempt+1))
		// Re-yield before relaunching: the retry must not run while the
		// job is switched out, and an abort may have landed meanwhile.
		e.hooks.Yield(p, job)
		if job.aborted {
			return false
		}
	}
}

// computeSliced runs a GPU node as a sequence of kernel slices with a
// yield point between them — the related-work baseline. Every slice after
// the first pays the preemption penalty of saving and restoring the
// kernel's massively parallel context.
func (e *Engine) computeSliced(p *sim.Proc, job *Job, n *graph.Node, dur time.Duration) {
	remaining := dur
	first := true
	for remaining > 0 {
		slice := e.cfg.KernelSliceDur
		if remaining < slice {
			slice = remaining
		}
		remaining -= slice
		if !first {
			// Sub-node preemption point, then pay the context restore.
			e.hooks.Yield(p, job)
			if job.aborted {
				return
			}
			slice += e.cfg.KernelSlicePenalty
		}
		first = false
		if !e.submitKernel(p, job, n, slice) {
			return
		}
	}
}

// profilingFactor returns the kernel inflation factor modelling online
// CUPTI instrumentation for g: 1 + Tax * nodes / totalGPUWork.
func (e *Engine) profilingFactor(g *graph.Graph) float64 {
	if f, ok := e.taxOf[g]; ok {
		return f
	}
	s := g.Stats()
	f := 1.0
	if s.GPUWork > 0 {
		f = 1 + e.cfg.OnlineProfilingTax.Seconds()*float64(s.Nodes)/s.GPUWork.Seconds()
	}
	e.taxOf[g] = f
	return f
}

// SetRand gives the engine a private random source in place of the
// environment's shared one; see gpu.Device.SetRand.
func (e *Engine) SetRand(r *rand.Rand) { e.rng = r }

// rand returns the engine's random source.
func (e *Engine) rand() *rand.Rand {
	if e.rng != nil {
		return e.rng
	}
	return e.env.Rand()
}

// jittered perturbs d by the configured relative noise, never below 20% of
// the nominal duration.
func (e *Engine) jittered(d time.Duration) time.Duration {
	if e.cfg.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + e.rand().NormFloat64()*e.cfg.Jitter
	if f < 0.2 {
		f = 0.2
	}
	return time.Duration(float64(d) * f)
}
