package executor

import (
	"testing"
	"time"

	"olympian/internal/gpu"
	"olympian/internal/graph"
	"olympian/internal/model"
	"olympian/internal/sim"
)

// testSpec has no launch latency for exact arithmetic.
var testSpec = gpu.Spec{Name: "test", ClockScale: 1, Capacity: 1, MemoryBytes: 1 << 30}

// lineGraph builds root -> a(GPU, async) -> b(GPU), plus root -> c(CPU).
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := &graph.Node{Op: "b", Device: graph.GPU, Duration: 2 * time.Millisecond, Occupancy: 1}
	a := &graph.Node{Op: "a", Device: graph.GPU, Duration: 3 * time.Millisecond, Occupancy: 1, Async: true, Children: []*graph.Node{b}}
	c := &graph.Node{Op: "c", Device: graph.CPU, Duration: 1 * time.Millisecond}
	root := &graph.Node{Op: "root", Device: graph.CPU, Duration: 1 * time.Millisecond, Children: []*graph.Node{a, c}}
	g := &graph.Graph{Model: "line", BatchSize: 1, Root: root}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunExecutesAllNodes(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{}, nil)
	g := lineGraph(t)

	var executed []string
	eng.NodeObserver = func(_ *Job, n *graph.Node, _, _ time.Duration) {
		executed = append(executed, n.Op)
	}
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if len(executed) != 4 {
		t.Fatalf("executed %v, want 4 nodes", executed)
	}
	// root(1ms CPU) then async a(3ms GPU)->b(2ms GPU); c(1ms CPU) overlaps a.
	// Completion: root at 1ms, a at 4ms, b at 6ms, c at 2ms.
	if job.EndAt != sim.Time(6*time.Millisecond) {
		t.Fatalf("job finished at %v, want 6ms", job.EndAt)
	}
}

func TestJobTimesRecorded(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{}, nil)
	g := lineGraph(t)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		eng.Run(p, job)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if job.StartAt != sim.Time(5*time.Millisecond) {
		t.Fatalf("start %v, want 5ms", job.StartAt)
	}
	if job.EndAt <= job.StartAt {
		t.Fatalf("end %v not after start %v", job.EndAt, job.StartAt)
	}
}

// recordingHooks logs hook invocations.
type recordingHooks struct {
	registered, deregistered int
	yields, nodeDones        int
}

func (h *recordingHooks) Register(*sim.Proc, *Job)              { h.registered++ }
func (h *recordingHooks) Deregister(*sim.Proc, *Job)            { h.deregistered++ }
func (h *recordingHooks) Yield(*sim.Proc, *Job)                 { h.yields++ }
func (h *recordingHooks) NodeDone(*sim.Proc, *Job, *graph.Node) { h.nodeDones++ }

func TestHooksCalledPerNode(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	hooks := &recordingHooks{}
	eng := New(env, dev, Config{}, hooks)
	g := lineGraph(t)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if hooks.registered != 1 || hooks.deregistered != 1 {
		t.Fatalf("register/deregister = %d/%d, want 1/1", hooks.registered, hooks.deregistered)
	}
	// One yield per node plus one launch-side yield per GPU node.
	if hooks.yields != 6 || hooks.nodeDones != 4 {
		t.Fatalf("yields/nodeDones = %d/%d, want 6/4", hooks.yields, hooks.nodeDones)
	}
}

func TestThreadPoolLimitDelaysExecution(t *testing.T) {
	// Two async GPU branches but a pool of 1 thread: the second branch is
	// delayed until the first finishes, serializing them.
	mk := func(poolSize int) sim.Time {
		env := sim.NewEnv(1)
		dev := gpu.New(env, testSpec)
		eng := New(env, dev, Config{ThreadPoolSize: poolSize}, nil)
		a := &graph.Node{Op: "a", Device: graph.GPU, Duration: 4 * time.Millisecond, Occupancy: 0.4, Async: true}
		b := &graph.Node{Op: "b", Device: graph.GPU, Duration: 4 * time.Millisecond, Occupancy: 0.4, Async: true}
		root := &graph.Node{Op: "root", Device: graph.CPU, Duration: time.Millisecond, Children: []*graph.Node{a, b}}
		g := &graph.Graph{Model: "fork", BatchSize: 1, Root: root}
		if err := g.Finalize(); err != nil {
			t.Fatal(err)
		}
		job := eng.NewJob(1, g)
		env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		return job.EndAt
	}
	parallel := mk(8)
	serial := mk(1)
	if parallel != sim.Time(5*time.Millisecond) {
		t.Fatalf("parallel finish %v, want 5ms", parallel)
	}
	if serial != sim.Time(9*time.Millisecond) {
		t.Fatalf("serial finish %v, want 9ms (pool of 1 serializes)", serial)
	}
}

func TestOnlineProfilingTaxInflatesRuntime(t *testing.T) {
	run := func(tax time.Duration) sim.Time {
		env := sim.NewEnv(1)
		dev := gpu.New(env, testSpec)
		eng := New(env, dev, Config{OnlineProfilingTax: tax}, nil)
		g := lineGraph(t)
		job := eng.NewJob(1, g)
		env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		return job.EndAt
	}
	base := run(0)
	taxed := run(500 * time.Microsecond)
	if taxed <= base {
		t.Fatalf("online profiling did not inflate runtime: %v vs %v", taxed, base)
	}
}

func TestJitterPerturbsDurationsDeterministically(t *testing.T) {
	run := func(seed int64) sim.Time {
		env := sim.NewEnv(seed)
		dev := gpu.New(env, testSpec)
		eng := New(env, dev, Config{Jitter: 0.1}, nil)
		g := lineGraph(t)
		job := eng.NewJob(1, g)
		env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		return job.EndAt
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestSoloModelRunMatchesCalibratedRuntime(t *testing.T) {
	// End-to-end calibration: a solo Inception batch-100 inference should
	// run for roughly the calibrated target (~0.5s) on the reference GPU.
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{model.Inception, 100},
		{model.ResNet152, 100},
	} {
		g, err := model.Build(tc.name, tc.batch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.TargetRuntime(tc.name, tc.batch)
		if err != nil {
			t.Fatal(err)
		}
		env := sim.NewEnv(1)
		dev := gpu.New(env, gpu.GTX1080Ti)
		eng := New(env, dev, Config{}, nil)
		job := eng.NewJob(1, g)
		env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		got := time.Duration(job.EndAt)
		lo := time.Duration(float64(want) * 0.75)
		hi := time.Duration(float64(want) * 1.25)
		if got < lo || got > hi {
			t.Errorf("%s batch %d: solo runtime %v outside [%v, %v]",
				tc.name, tc.batch, got.Round(time.Millisecond), lo.Round(time.Millisecond), hi.Round(time.Millisecond))
		}
	}
}

func TestPoolStats(t *testing.T) {
	env := sim.NewEnv(1)
	tp := NewThreadPool(env, 2)
	done := 0
	env.Go("submitter", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			tp.Submit(1, func(w *sim.Proc) {
				w.Sleep(time.Millisecond)
				done++
			})
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if done != 5 {
		t.Fatalf("completed %d tasks, want 5", done)
	}
	s := tp.Stats()
	if s.Spawned != 2 {
		t.Fatalf("spawned %d threads, want 2 (the cap)", s.Spawned)
	}
	if s.Delayed != 3 {
		t.Fatalf("delayed %d submissions, want 3", s.Delayed)
	}
	if s.Completed != 5 {
		t.Fatalf("completed stat %d, want 5", s.Completed)
	}
}

func TestJobThreadAccounting(t *testing.T) {
	env := sim.NewEnv(1)
	tp := NewThreadPool(env, 4)
	env.Go("submitter", func(p *sim.Proc) {
		tp.Submit(7, func(w *sim.Proc) { w.Sleep(2 * time.Millisecond) })
		tp.Submit(7, func(w *sim.Proc) { w.Sleep(2 * time.Millisecond) })
		tp.Submit(9, func(w *sim.Proc) { w.Sleep(2 * time.Millisecond) })
		p.Sleep(time.Millisecond)
		if got := tp.JobThreads(7); got != 2 {
			t.Errorf("job 7 threads = %d, want 2", got)
		}
		if got := tp.JobThreads(9); got != 1 {
			t.Errorf("job 9 threads = %d, want 1", got)
		}
		if got := tp.InUse(); got != 3 {
			t.Errorf("in use = %d, want 3", got)
		}
		p.Sleep(2 * time.Millisecond)
		if got := tp.InUse(); got != 0 {
			t.Errorf("in use after completion = %d, want 0", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
}
