package executor

import (
	"olympian/internal/sim"
)

// ThreadPool is the shared CPU thread pool TF-Serving fetches gang threads
// from (Algorithm 1 line 14). Threads are simulated processes, reused LIFO.
// When the pool is exhausted, submissions queue until a thread frees up —
// the "execution may be delayed" behaviour the paper notes, and the
// mechanism behind Olympian's reduced scalability for some DNNs (§4.3):
// suspended gangs hold their threads, so Olympian reaches the limit sooner.
type ThreadPool struct {
	env *sim.Env
	max int

	idle    []*worker
	backlog []task
	total   int

	// perJob counts threads currently executing (or suspended inside) a
	// task for each job.
	perJob map[int]int

	stats PoolStats
}

// PoolStats are thread-pool counters.
type PoolStats struct {
	// Spawned is the number of worker threads ever created.
	Spawned int
	// PeakInUse is the maximum number of simultaneously busy threads.
	PeakInUse int
	// Delayed counts submissions that had to wait for a free thread.
	Delayed int
	// Completed counts finished tasks.
	Completed int
}

type task struct {
	jobID int
	fn    func(p *sim.Proc)
}

type worker struct {
	cond *sim.Cond
	next *task
	stop bool
}

// NewThreadPool returns a pool that will grow up to max threads.
func NewThreadPool(env *sim.Env, max int) *ThreadPool {
	return &ThreadPool{env: env, max: max, perJob: make(map[int]int)}
}

// Submit schedules fn to run on a pool thread on behalf of jobID. If no
// thread is available and the pool is at its limit, the task is delayed
// until one frees up.
func (tp *ThreadPool) Submit(jobID int, fn func(p *sim.Proc)) {
	t := task{jobID: jobID, fn: fn}
	if n := len(tp.idle); n > 0 {
		w := tp.idle[n-1]
		tp.idle = tp.idle[:n-1]
		w.next = &t
		w.cond.Signal()
		return
	}
	if tp.total < tp.max {
		tp.spawn(t)
		return
	}
	tp.stats.Delayed++
	tp.backlog = append(tp.backlog, t)
}

func (tp *ThreadPool) spawn(first task) {
	tp.total++
	tp.stats.Spawned++
	w := &worker{cond: tp.env.NewCond("pool-worker"), next: &first}
	p := tp.env.Go("pool-worker", func(p *sim.Proc) { tp.workerLoop(p, w) })
	p.SetDaemon(true)
}

func (tp *ThreadPool) workerLoop(p *sim.Proc, w *worker) {
	for {
		for w.next == nil && !w.stop {
			w.cond.Wait(p)
		}
		if w.stop {
			return
		}
		t := *w.next
		w.next = nil
		tp.perJob[t.jobID]++
		if used := tp.InUse(); used > tp.stats.PeakInUse {
			tp.stats.PeakInUse = used
		}
		t.fn(p)
		tp.perJob[t.jobID]--
		if tp.perJob[t.jobID] == 0 {
			delete(tp.perJob, t.jobID)
		}
		tp.stats.Completed++
		if len(tp.backlog) > 0 {
			next := tp.backlog[0]
			tp.backlog = tp.backlog[1:]
			w.next = &next
			continue
		}
		tp.idle = append(tp.idle, w)
		// Park until the next Submit signals us.
	}
}

// InUse returns the number of threads currently executing tasks.
func (tp *ThreadPool) InUse() int { return tp.total - len(tp.idle) }

// Total returns the number of threads in existence.
func (tp *ThreadPool) Total() int { return tp.total }

// JobThreads returns how many pool threads are currently working for jobID.
func (tp *ThreadPool) JobThreads(jobID int) int { return tp.perJob[jobID] }

// Backlog returns the number of delayed submissions still waiting.
func (tp *ThreadPool) Backlog() int { return len(tp.backlog) }

// Stats returns a snapshot of pool counters.
func (tp *ThreadPool) Stats() PoolStats { return tp.stats }
