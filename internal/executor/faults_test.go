package executor

import (
	"errors"
	"testing"
	"time"

	"olympian/internal/faults"
	"olympian/internal/gpu"
	"olympian/internal/graph"
	"olympian/internal/sim"
)

// gpuChain builds a root CPU node followed by an async chain of n GPU
// kernels.
func gpuChain(t *testing.T, n int, d time.Duration) *graph.Graph {
	t.Helper()
	var head, tail *graph.Node
	for i := 0; i < n; i++ {
		node := &graph.Node{Op: "k", Device: graph.GPU, Duration: d, Occupancy: 1}
		if head == nil {
			head, tail = node, node
		} else {
			tail.Children = append(tail.Children, node)
			tail = node
		}
	}
	head.Async = true
	root := &graph.Node{Op: "root", Device: graph.CPU, Duration: time.Microsecond, Children: []*graph.Node{head}}
	g := &graph.Graph{Model: "chain", BatchSize: 1, Root: root}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKernelRetryRecoversTransientFaults(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	inj := faults.New(9, faults.Plan{KernelFailRate: 0.1})
	dev.InjectFaults(inj)
	eng := New(env, dev, Config{Faults: inj}, nil)
	g := gpuChain(t, 60, 100*time.Microsecond)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if job.Err() != nil {
		t.Fatalf("job failed despite retries: %v", job.Err())
	}
	if eng.KernelRetries() == 0 {
		t.Fatal("no kernel retries recorded at a 10% fault rate over 60 kernels")
	}
	if inj.Counters().KernelFaults == 0 {
		t.Fatal("injector recorded no kernel faults")
	}
}

func TestPersistentKernelFaultAbortsJob(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	inj := faults.New(1, faults.Plan{KernelFailRate: 1})
	dev.InjectFaults(inj)
	eng := New(env, dev, Config{Faults: inj, KernelRetries: 2}, nil)
	g := gpuChain(t, 5, 100*time.Microsecond)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if !job.Aborted() {
		t.Fatal("job not aborted despite a permanent kernel fault")
	}
	if !errors.Is(job.Err(), faults.ErrKernelFault) {
		t.Fatalf("job err = %v, want wrapped ErrKernelFault", job.Err())
	}
	// 1 launch + 2 retries for the first kernel, then give up.
	if eng.KernelRetries() != 2 {
		t.Fatalf("kernel retries = %d, want 2", eng.KernelRetries())
	}
}

func TestInjectedAbortStopsGang(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	inj := faults.New(2, faults.Plan{AbortRate: 0.05})
	eng := New(env, dev, Config{Faults: inj}, nil)
	g := gpuChain(t, 200, 50*time.Microsecond)
	job := eng.NewJob(1, g)
	var finished sim.Time
	env.Go("client", func(p *sim.Proc) {
		eng.Run(p, job)
		finished = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if !job.Aborted() || !errors.Is(job.Err(), faults.ErrJobAborted) {
		t.Fatalf("expected injected abort at 5%% over 200 yield points, got err=%v", job.Err())
	}
	// The gang unwound early: the aborted run must end well before the 10ms
	// the full chain would take.
	if finished >= sim.Time(10*time.Millisecond) {
		t.Fatalf("aborted job ran to %v, want early unwind", finished)
	}
	if job.EndAt == 0 {
		t.Fatal("Run never returned for the aborted job")
	}
}

func TestAbortJobIsIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{}, nil)
	g := gpuChain(t, 3, time.Millisecond)
	job := eng.NewJob(1, g)
	first := errors.New("first")
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		eng.AbortJob(p, job, first)
		eng.AbortJob(p, job, errors.New("second"))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if job.Err() != first {
		t.Fatalf("job err = %v, want the first abort reason", job.Err())
	}
}
