package executor

import (
	"testing"
	"time"

	"olympian/internal/gpu"
	"olympian/internal/graph"
	"olympian/internal/sim"
)

// wideGraph builds a root with n async GPU children of equal duration.
func wideGraph(t *testing.T, n int, d time.Duration, occ float64) *graph.Graph {
	t.Helper()
	root := &graph.Node{Op: "root", Device: graph.CPU, Duration: time.Microsecond}
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, &graph.Node{
			Op: "k", Device: graph.GPU, Duration: d, Occupancy: occ, Async: true,
		})
	}
	g := &graph.Graph{Model: "wide", BatchSize: 1, Root: root}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMaxInflightBoundsConcurrentKernels(t *testing.T) {
	// 8 parallel 0.1-occupancy kernels would all fit on the device, but a
	// per-job in-flight limit of 2 serializes them into 4 waves.
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{MaxInflight: 2}, nil)
	g := wideGraph(t, 8, 4*time.Millisecond, 0.1)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	// 8 kernels / 2 in flight = 4 waves of 4ms (plus the 1us root).
	want := sim.Time(16*time.Millisecond + time.Microsecond)
	if job.EndAt != want {
		t.Fatalf("finished at %v, want %v", job.EndAt, want)
	}
}

func TestBFSOrderIsLevelOrder(t *testing.T) {
	// root -> (a, b); a -> c; b -> d. Synchronous nodes execute in BFS
	// order: root a b c d.
	mk := func(op string) *graph.Node {
		return &graph.Node{Op: op, Device: graph.CPU, Duration: time.Microsecond}
	}
	c, d := mk("c"), mk("d")
	a, b := mk("a"), mk("b")
	a.Children = []*graph.Node{c}
	b.Children = []*graph.Node{d}
	root := mk("root")
	root.Children = []*graph.Node{a, b}
	g := &graph.Graph{Model: "bfs", BatchSize: 1, Root: root}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{}, nil)
	var order []string
	eng.NodeObserver = func(_ *Job, n *graph.Node, _, _ time.Duration) {
		order = append(order, n.Op)
	}
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	want := []string{"root", "a", "b", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestNodeOverheadSlowsRun(t *testing.T) {
	run := func(overhead time.Duration) sim.Time {
		env := sim.NewEnv(1)
		dev := gpu.New(env, testSpec)
		eng := New(env, dev, Config{NodeOverhead: overhead}, nil)
		g := wideGraph(t, 4, time.Millisecond, 1.0)
		job := eng.NewJob(1, g)
		env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		return job.EndAt
	}
	if fast, slow := run(0), run(100*time.Microsecond); slow <= fast {
		t.Fatalf("node overhead did not slow the run: %v vs %v", slow, fast)
	}
}

func TestStreamCarriesClientID(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{}, nil)
	g := wideGraph(t, 2, time.Millisecond, 0.5)
	job := eng.NewJob(42, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	// The stream weight is drawn lazily on first submission; a drawn
	// weight for stream 42 proves kernels ran on the client's stream.
	if dev.StreamWeight(42) == 0 {
		t.Fatal("no kernels submitted on the client's stream")
	}
	if dev.OwnerKernels(job.ID) != 2 {
		t.Fatalf("owner kernels %d, want 2", dev.OwnerKernels(job.ID))
	}
}

func TestProfilingFactorScalesWithGraph(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{OnlineProfilingTax: 10 * time.Microsecond}, nil)
	// Graph with lots of nodes per unit of GPU work gets a bigger factor.
	dense := wideGraph(t, 10, 100*time.Microsecond, 0.1)
	sparse := wideGraph(t, 2, 10*time.Millisecond, 0.1)
	fDense := eng.profilingFactor(dense)
	fSparse := eng.profilingFactor(sparse)
	if fDense <= fSparse || fSparse <= 1 {
		t.Fatalf("factors dense=%.3f sparse=%.3f", fDense, fSparse)
	}
	// Cached on second call.
	if eng.profilingFactor(dense) != fDense {
		t.Fatal("factor not cached")
	}
}

func TestKernelSlicingSplitsAndPays(t *testing.T) {
	// A 1ms kernel with 400us slices runs as 3 slices; the two later
	// slices each pay the 100us penalty: 1ms + 200us total.
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{
		KernelSliceDur:     400 * time.Microsecond,
		KernelSlicePenalty: 100 * time.Microsecond,
	}, nil)
	g := wideGraph(t, 1, time.Millisecond, 1.0)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	want := sim.Time(1200*time.Microsecond + time.Microsecond) // + root
	if job.EndAt != want {
		t.Fatalf("sliced kernel finished at %v, want %v", job.EndAt, want)
	}
	if got := dev.OwnerKernels(job.ID); got != 3 {
		t.Fatalf("%d kernel launches, want 3 slices", got)
	}
}

func TestKernelSlicingLeavesSmallKernelsAlone(t *testing.T) {
	env := sim.NewEnv(1)
	dev := gpu.New(env, testSpec)
	eng := New(env, dev, Config{
		KernelSliceDur:     400 * time.Microsecond,
		KernelSlicePenalty: 100 * time.Microsecond,
	}, nil)
	g := wideGraph(t, 1, 300*time.Microsecond, 1.0)
	job := eng.NewJob(1, g)
	env.Go("client", func(p *sim.Proc) { eng.Run(p, job) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if got := dev.OwnerKernels(job.ID); got != 1 {
		t.Fatalf("%d launches for a sub-slice kernel, want 1", got)
	}
}
