// Autoregressive model class: decoder-only LLMs served token by token.
//
// A CNN in the zoo is a fixed dataflow graph — one pass per request. An LLM
// request instead runs one *prefill* pass over the whole prompt, then one
// *decode* pass per generated token, and the decode passes of concurrent
// requests are fused into a single batched kernel per step (continuous
// batching). Simulating every one of the ~10k real kernels per step would
// drown the event heap, so the class models each pass as one fused kernel
// whose duration follows the standard roofline shape:
//
//	prefill(p tokens)          = base + perTok·p            (compute-bound)
//	decode(s seqs, k KV toks)  = base + perSeq·s + perKV·k  (bandwidth-bound)
//
// The decode base term is the weight-streaming cost — every step reads all
// weights once regardless of batch size, which is exactly why continuous
// batching pays: the base amortizes over the sequences sharing the step.
// Durations are reference-platform (ClockScale 1.0) values; gpu.Device
// divides by the target's clock scale on execution, and the profiler fits
// these curves back out of observed kernel times on the target spec.
package model

import (
	"fmt"
	"time"
)

// Canonical LLM names.
const (
	// LLM1B is a ~1B-parameter decoder in half precision.
	LLM1B = "llm-1b"
	// LLM3B is a ~3B-parameter decoder in half precision.
	LLM3B = "llm-3b"
	// LLMTiny is a deliberately small synthetic LLM for tests and benchmarks
	// that push many requests through a fleet: microsecond-scale kernels and
	// a 2 KiB/token KV footprint keep event counts and memory pressure
	// configurable. Like Micro it is excluded from LLMNames.
	LLMTiny = "llm-tiny"
)

// llmDef holds one LLM's calibration constants.
type llmDef struct {
	name string

	// weightsBytes is the resident parameter footprint on device.
	weightsBytes int64
	// kvBytesPerToken is the attention-cache footprint per cached token
	// (2 · layers · hidden · bytes-per-element).
	kvBytesPerToken int64

	prefillBase   time.Duration // fixed per-pass overhead
	prefillPerTok time.Duration // compute cost per prompt token

	decodeBase   time.Duration // weight-streaming cost per step
	decodePerSeq time.Duration // per-sequence sampling/attention overhead
	decodePerKV  time.Duration // cache-read cost per resident KV token
}

// llmDefs is the autoregressive zoo, keyed by name.
var llmDefs = map[string]llmDef{
	LLM1B: {
		name:            LLM1B,
		weightsBytes:    5 << 29, // 2.5 GiB
		kvBytesPerToken: 128 << 10,
		prefillBase:     300 * time.Microsecond,
		prefillPerTok:   200 * time.Microsecond,
		decodeBase:      5 * time.Millisecond,
		decodePerSeq:    60 * time.Microsecond,
		decodePerKV:     250 * time.Nanosecond,
	},
	LLM3B: {
		name:            LLM3B,
		weightsBytes:    6 << 30,
		kvBytesPerToken: 224 << 10,
		prefillBase:     500 * time.Microsecond,
		prefillPerTok:   520 * time.Microsecond,
		decodeBase:      12 * time.Millisecond,
		decodePerSeq:    110 * time.Microsecond,
		decodePerKV:     500 * time.Nanosecond,
	},
	LLMTiny: {
		name:            LLMTiny,
		weightsBytes:    64 << 20,
		kvBytesPerToken: 2 << 10,
		prefillBase:     40 * time.Microsecond,
		prefillPerTok:   1500 * time.Nanosecond,
		decodeBase:      20 * time.Microsecond,
		decodePerSeq:    2 * time.Microsecond,
		decodePerKV:     8 * time.Nanosecond,
	},
}

// LLMNames returns the full-size autoregressive models in ascending size
// order. LLMTiny is excluded: it is a test-scale artifact, not a calibrated
// model.
func LLMNames() []string { return []string{LLM1B, LLM3B} }

// IsLLM reports whether the name denotes an autoregressive model (including
// LLMTiny).
func IsLLM(name string) bool {
	_, ok := llmDefs[name]
	return ok
}

func llmDefFor(name string) (llmDef, error) {
	d, ok := llmDefs[name]
	if !ok {
		return llmDef{}, fmt.Errorf("model: unknown LLM %q", name)
	}
	return d, nil
}

// LLMWeightsBytes returns the resident parameter footprint of an LLM.
func LLMWeightsBytes(name string) (int64, error) {
	d, err := llmDefFor(name)
	if err != nil {
		return 0, err
	}
	return d.weightsBytes, nil
}

// LLMKVBytesPerToken returns the attention-cache footprint per cached token.
func LLMKVBytesPerToken(name string) (int64, error) {
	d, err := llmDefFor(name)
	if err != nil {
		return 0, err
	}
	return d.kvBytesPerToken, nil
}

// LLMPrefillTime returns the reference-platform duration of one prefill pass
// over the given number of prompt tokens (recomputation after preemption
// passes prompt+generated).
func LLMPrefillTime(name string, tokens int) (time.Duration, error) {
	d, err := llmDefFor(name)
	if err != nil {
		return 0, err
	}
	if tokens < 1 {
		tokens = 1
	}
	return d.prefillBase + time.Duration(tokens)*d.prefillPerTok, nil
}

// LLMDecodeStepTime returns the reference-platform duration of one fused
// decode step over seqs concurrent sequences with kvTokens total cached
// tokens across them.
func LLMDecodeStepTime(name string, seqs, kvTokens int) (time.Duration, error) {
	d, err := llmDefFor(name)
	if err != nil {
		return 0, err
	}
	if seqs < 1 {
		seqs = 1
	}
	if kvTokens < 0 {
		kvTokens = 0
	}
	return d.decodeBase + time.Duration(seqs)*d.decodePerSeq + time.Duration(kvTokens)*d.decodePerKV, nil
}
