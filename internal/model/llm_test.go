package model

import (
	"testing"
	"time"
)

func TestLLMNamesAndLookup(t *testing.T) {
	for _, name := range LLMNames() {
		if !IsLLM(name) {
			t.Fatalf("LLMNames entry %q not IsLLM", name)
		}
		if IsLLM(name) && name == LLMTiny {
			t.Fatalf("LLMTiny must be excluded from LLMNames")
		}
		w, err := LLMWeightsBytes(name)
		if err != nil || w <= 0 {
			t.Fatalf("LLMWeightsBytes(%q) = %d, %v", name, w, err)
		}
		kv, err := LLMKVBytesPerToken(name)
		if err != nil || kv <= 0 {
			t.Fatalf("LLMKVBytesPerToken(%q) = %d, %v", name, kv, err)
		}
	}
	if !IsLLM(LLMTiny) {
		t.Fatalf("LLMTiny must be IsLLM")
	}
	if IsLLM(Inception) || IsLLM("nonesuch") {
		t.Fatalf("IsLLM must reject non-LLM names")
	}
	if _, err := LLMPrefillTime("nonesuch", 8); err == nil {
		t.Fatalf("unknown LLM must error")
	}
}

func TestLLMCostsScaleWithDimensions(t *testing.T) {
	for _, name := range append(LLMNames(), LLMTiny) {
		p64, _ := LLMPrefillTime(name, 64)
		p512, _ := LLMPrefillTime(name, 512)
		if p512 <= p64 {
			t.Fatalf("%s: prefill must grow with prompt length (%v vs %v)", name, p64, p512)
		}
		d1, _ := LLMDecodeStepTime(name, 1, 128)
		d8, _ := LLMDecodeStepTime(name, 8, 128)
		dKV, _ := LLMDecodeStepTime(name, 1, 4096)
		if d8 <= d1 || dKV <= d1 {
			t.Fatalf("%s: decode step must grow with batch and KV (%v, %v, %v)", name, d1, d8, dKV)
		}
		// Continuous batching must pay: 8 sequences sharing a step must cost
		// far less than 8 solo steps, because the weight-streaming base
		// amortizes.
		if d8 >= 8*d1 {
			t.Fatalf("%s: batched decode step not cheaper than solo steps", name)
		}
	}
}

func TestLLMDecodeStepClampsInputs(t *testing.T) {
	d0, err := LLMDecodeStepTime(LLMTiny, 0, -5)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := LLMDecodeStepTime(LLMTiny, 1, 0)
	if d0 != d1 {
		t.Fatalf("clamped decode step mismatch: %v vs %v", d0, d1)
	}
	p0, _ := LLMPrefillTime(LLMTiny, 0)
	p1, _ := LLMPrefillTime(LLMTiny, 1)
	if p0 != p1 || p0 < time.Microsecond {
		t.Fatalf("clamped prefill mismatch: %v vs %v", p0, p1)
	}
}
