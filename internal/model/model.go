// Package model is the model zoo: synthetic dataflow graphs standing in for
// the seven DNNs of the paper's evaluation (Inception-v4, GoogLeNet,
// AlexNet, VGG, ResNet-50/101/152).
//
// The generator is calibrated against Table 2 of the paper: at the paper's
// batch size each model produces exactly the table's node count and GPU-node
// count, and a solo run approximates the table's runtime. Graphs are built
// from two parts, mirroring how TF-Serving graphs grow with batch size:
//
//   - a per-image preprocessing chain (decode/resize/crop/normalize …)
//     replicated once per image in the batch — this is why Table 2 node
//     counts scale with batch size; and
//   - an architecture body (stages of branched conv blocks) whose node
//     count is fixed but whose kernel durations scale with batch size.
//
// Per-node durations follow the paper's Figure 4 shape: the large majority
// of nodes run for a few microseconds, with a heavy tail of convolution
// kernels up to a few milliseconds.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"olympian/internal/graph"
)

// Canonical model names.
const (
	Inception = "inception-v4"
	GoogLeNet = "googlenet"
	AlexNet   = "alexnet"
	VGG       = "vgg"
	ResNet50  = "resnet-50"
	ResNet101 = "resnet-101"
	ResNet152 = "resnet-152"
	// Micro is a deliberately tiny synthetic model — a couple dozen nodes
	// instead of ~15k — for scale experiments and benchmarks that push
	// millions of requests through a cluster. It is not part of the paper's
	// zoo and is excluded from Names (and thus from Table 2 calibration).
	Micro = "micro"
)

// def holds the per-architecture calibration constants.
type def struct {
	name string

	// Table 2 anchors.
	tableBatch   int
	tableNodes   int
	tableGPU     int
	tableRuntime time.Duration

	// Per-image preprocessing chain composition.
	chainLen int // nodes per image
	chainGPU int // GPU nodes per image

	// Body structure.
	stages   int
	branches int

	// Runtime scaling exponent: runtime(b) = tableRuntime * (b/tableBatch)^alpha.
	alpha float64

	// Device memory model: weights + per-batch workspace.
	weightsBytes   int64
	workspaceBase  int64
	workspacePerIm int64

	// seed decorrelates the duration patterns of different models.
	seed int64
}

var defs = map[string]def{
	Inception: {
		name: Inception, tableBatch: 150, tableNodes: 15599, tableGPU: 13309,
		tableRuntime: 810 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 22, branches: 4, alpha: 1.3,
		weightsBytes: 163 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 101,
	},
	GoogLeNet: {
		name: GoogLeNet, tableBatch: 200, tableNodes: 18980, tableGPU: 15948,
		tableRuntime: 1090 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 12, branches: 4, alpha: 1.3,
		weightsBytes: 27 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 102,
	},
	AlexNet: {
		name: AlexNet, tableBatch: 256, tableNodes: 23774, tableGPU: 19902,
		tableRuntime: 1130 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 8, branches: 1, alpha: 1.3,
		weightsBytes: 233 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 103,
	},
	VGG: {
		name: VGG, tableBatch: 120, tableNodes: 11297, tableGPU: 9965,
		tableRuntime: 830 * time.Millisecond, chainLen: 80, chainGPU: 72,
		stages: 13, branches: 1, alpha: 1.3,
		weightsBytes: 528 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 104,
	},
	ResNet50: {
		name: ResNet50, tableBatch: 144, tableNodes: 14472, tableGPU: 12280,
		tableRuntime: 790 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 16, branches: 2, alpha: 1.3,
		weightsBytes: 98 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 105,
	},
	ResNet101: {
		name: ResNet101, tableBatch: 128, tableNodes: 14034, tableGPU: 12082,
		tableRuntime: 850 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 33, branches: 2, alpha: 1.3,
		weightsBytes: 170 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 106,
	},
	ResNet152: {
		name: ResNet152, tableBatch: 100, tableNodes: 12495, tableGPU: 10963,
		tableRuntime: 800 * time.Millisecond, chainLen: 80, chainGPU: 68,
		stages: 50, branches: 2, alpha: 1.3,
		weightsBytes: 230 << 20, workspaceBase: 20 << 20, workspacePerIm: 600 << 10,
		seed: 107,
	},
	Micro: {
		name: Micro, tableBatch: 8, tableNodes: 26, tableGPU: 14,
		tableRuntime: 1200 * time.Microsecond, chainLen: 2, chainGPU: 1,
		stages: 2, branches: 1, alpha: 1.0,
		weightsBytes: 1 << 20, workspaceBase: 1 << 20, workspacePerIm: 64 << 10,
		seed: 108,
	},
}

// Names returns the model names in the paper's Table 2 order.
func Names() []string {
	return []string{Inception, GoogLeNet, AlexNet, VGG, ResNet50, ResNet101, ResNet152}
}

// Table2Entry is one row of the paper's Table 2.
type Table2Entry struct {
	Model    string
	Batch    int
	Nodes    int
	GPUNodes int
	Runtime  time.Duration
}

// Table2 returns the paper's Table 2 anchor values.
func Table2() []Table2Entry {
	out := make([]Table2Entry, 0, len(defs))
	for _, name := range Names() {
		d := defs[name]
		out = append(out, Table2Entry{
			Model: d.name, Batch: d.tableBatch, Nodes: d.tableNodes,
			GPUNodes: d.tableGPU, Runtime: d.tableRuntime,
		})
	}
	return out
}

// TargetRuntime returns the calibrated solo runtime for the model at the
// given batch size (the power-law fit anchored at Table 2).
func TargetRuntime(name string, batch int) (time.Duration, error) {
	d, ok := defs[name]
	if !ok {
		return 0, fmt.Errorf("model: unknown model %q", name)
	}
	return d.runtime(batch), nil
}

func (d def) runtime(batch int) time.Duration {
	scale := math.Pow(float64(batch)/float64(d.tableBatch), d.alpha)
	return time.Duration(float64(d.tableRuntime) * scale)
}

// MemoryBytes returns the device memory one serving client of the model
// needs (weights plus batch workspace).
func MemoryBytes(name string, batch int) (int64, error) {
	d, ok := defs[name]
	if !ok {
		return 0, fmt.Errorf("model: unknown model %q", name)
	}
	return d.weightsBytes + d.workspaceBase + int64(batch)*d.workspacePerIm, nil
}

// bodyOccupancy models SM saturation: the paper's batch sizes (100+) leave
// no room for spatial multiplexing, while small batches underfill the GPU.
func bodyOccupancy(batch int) float64 {
	occ := 0.12 + float64(batch)/110
	if occ > 1 {
		occ = 1
	}
	if occ < 0.12 {
		occ = 0.12
	}
	return occ
}

// BuildUncached constructs the model's dataflow graph for the given batch
// size, bypassing the package cache. Graph construction is deterministic:
// the same (name, batch) always yields an identical graph. Most callers
// want Build, which memoizes; BuildUncached exists for benchmarks that
// measure construction cost and for callers that intend to mutate the graph.
func BuildUncached(name string, batch int) (*graph.Graph, error) {
	d, ok := defs[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q", name)
	}
	if batch < 1 {
		return nil, fmt.Errorf("model %s: batch size %d < 1", name, batch)
	}

	bodyNodes := d.tableNodes - d.tableBatch*d.chainLen
	bodyGPU := d.tableGPU - d.tableBatch*d.chainGPU
	bodyCPU := bodyNodes - bodyGPU
	if bodyGPU <= d.stages*d.branches || bodyCPU <= d.stages {
		return nil, fmt.Errorf("model %s: calibration broken (bodyGPU=%d bodyCPU=%d)", name, bodyGPU, bodyCPU)
	}

	rng := rand.New(rand.NewSource(d.seed))
	occ := bodyOccupancy(batch)

	// Root: the batching node that assembles client inputs (paper §2:
	// Tensorflow adds nodes that decode inputs into batch matrices).
	root := &graph.Node{Op: "batch-assemble", Device: graph.CPU, Duration: 10 * time.Microsecond}
	g := &graph.Graph{Model: name, BatchSize: batch, Root: root}

	// Per-image preprocessing chains hang off the root; their first node is
	// async so each image is handled by its own thread, as in TF-Serving.
	for img := 0; img < batch; img++ {
		root.Children = append(root.Children, buildChain(d, rng))
	}

	// Architecture body: a spine of stage nodes; each stage carries
	// `branches` chains of GPU kernels plus auxiliary CPU nodes.
	budget := d.bodyGPUBudget(batch)
	durs, ops := bodyDurations(rng, bodyGPU, budget)

	spine := &graph.Node{Op: "stage", Device: graph.CPU, Duration: 6 * time.Microsecond}
	root.Children = append(root.Children, spine)
	cur := spine
	// The root and the spine nodes all count against the body CPU budget.
	cpuLeft := bodyCPU - d.stages - 1
	gpuIdx := 0
	for s := 0; s < d.stages; s++ {
		gpuThis := bodyGPU / d.stages
		if s < bodyGPU%d.stages {
			gpuThis++
		}
		cpuThis := cpuLeft / d.stages
		if s < cpuLeft%d.stages {
			cpuThis++
		}
		// Branch chains of GPU kernels.
		for br := 0; br < d.branches; br++ {
			n := gpuThis / d.branches
			if br < gpuThis%d.branches {
				n++
			}
			if n == 0 {
				continue
			}
			head := gpuChain(durs[gpuIdx:gpuIdx+n], ops[gpuIdx:gpuIdx+n], occ)
			gpuIdx += n
			cur.Children = append(cur.Children, head)
		}
		// Auxiliary CPU nodes (consts, identities, shape ops).
		for i := 0; i < cpuThis; i++ {
			cur.Children = append(cur.Children, &graph.Node{
				Op: "aux-cpu", Device: graph.CPU,
				Duration: time.Duration(1+rng.Intn(4)) * time.Microsecond,
			})
		}
		if s < d.stages-1 {
			next := &graph.Node{Op: "stage", Device: graph.CPU, Duration: 6 * time.Microsecond}
			cur.Children = append(cur.Children, next)
			cur = next
		}
	}
	if gpuIdx != bodyGPU {
		return nil, fmt.Errorf("model %s: placed %d body GPU nodes, want %d", name, gpuIdx, bodyGPU)
	}

	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildChain builds one per-image preprocessing chain: exactly chainLen
// nodes of which exactly chainGPU launch tiny kernels. The head node is a
// GPU node marked async (the processing loop hands each image to its own
// thread, as TF-Serving does).
func buildChain(d def, rng *rand.Rand) *graph.Node {
	nCPU := d.chainLen - d.chainGPU
	isCPU := make([]bool, d.chainLen)
	if nCPU > 0 {
		stride := float64(d.chainLen) / float64(nCPU)
		for j := 0; j < nCPU; j++ {
			pos := 1 + int(float64(j)*stride)
			if pos >= d.chainLen {
				pos = d.chainLen - 1
			}
			for isCPU[pos] {
				pos++
				if pos >= d.chainLen {
					pos = 1
				}
			}
			isCPU[pos] = true
		}
	}
	var head, tail *graph.Node
	for i := 0; i < d.chainLen; i++ {
		var n *graph.Node
		if isCPU[i] {
			n = &graph.Node{
				Op: "img-cpu", Device: graph.CPU,
				Duration: time.Duration(3+rng.Intn(5)) * time.Microsecond,
			}
		} else {
			n = &graph.Node{
				Op: "img-gpu", Device: graph.GPU,
				Duration:  chainKernelDuration(rng),
				Occupancy: 0.03,
			}
		}
		if head == nil {
			head, tail = n, n
		} else {
			tail.Children = append(tail.Children, n)
			tail = n
		}
	}
	head.Async = true
	return head
}

// chainKernelDuration draws a tiny preprocessing kernel duration: mostly
// 1-6 us with occasional 10-30 us resize kernels.
func chainKernelDuration(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.06 {
		return time.Duration(10+rng.Intn(21)) * time.Microsecond
	}
	return time.Duration(1+rng.Intn(6)) * time.Microsecond
}

// bodyGPUBudget returns the total GPU kernel time to distribute over the
// body, i.e. the runtime target minus the preprocessing-chain share and a
// CPU/launch slack.
func (d def) bodyGPUBudget(batch int) time.Duration {
	rt := d.runtime(batch)
	// Chain kernels: batch*chainGPU kernels at ~3.5us plus ~4us launch.
	chain := time.Duration(batch*d.chainGPU) * 7500 * time.Nanosecond
	// Launch latency for body kernels and CPU slack.
	bodyGPU := d.tableGPU - d.tableBatch*d.chainGPU
	slack := time.Duration(bodyGPU)*4*time.Microsecond + 10*time.Millisecond
	budget := rt - chain - slack
	if budget < time.Duration(bodyGPU)*2*time.Microsecond {
		budget = time.Duration(bodyGPU) * 2 * time.Microsecond
	}
	return budget
}

// bodyDurations draws n kernel durations matching the Figure 4 shape —
// ~40% tiny elementwise kernels, ~45% small convolutions, ~15% large
// convolutions — rescaled so the non-tiny mass sums to the budget. The
// second return value carries each kernel's op class, which the profiler's
// linear cost models key on.
func bodyDurations(rng *rand.Rand, n int, budget time.Duration) ([]time.Duration, []string) {
	durs := make([]time.Duration, n)
	ops := make([]string, n)
	var scalableSum float64
	scalable := make([]bool, n)
	for i := range durs {
		switch r := rng.Float64(); {
		case r < 0.40: // elementwise add/relu/bias: stays tiny at any batch
			durs[i] = time.Duration(3+rng.Intn(15)) * time.Microsecond
			ops[i] = "elemwise"
		case r < 0.85: // small conv kernels
			durs[i] = time.Duration(50+rng.Intn(350)) * time.Microsecond
			scalable[i] = true
			ops[i] = "conv-small"
		default: // large conv kernels
			durs[i] = time.Duration(800+rng.Intn(1700)) * time.Microsecond
			scalable[i] = true
			ops[i] = "conv-large"
		}
		if scalable[i] {
			scalableSum += float64(durs[i])
		}
	}
	var tinySum time.Duration
	for i := range durs {
		if !scalable[i] {
			tinySum += durs[i]
		}
	}
	remaining := float64(budget - tinySum)
	if remaining < 0 {
		remaining = float64(budget) * 0.5
	}
	k := remaining / scalableSum
	for i := range durs {
		if scalable[i] {
			durs[i] = time.Duration(float64(durs[i]) * k)
			if durs[i] < 10*time.Microsecond {
				durs[i] = 10 * time.Microsecond
			}
		}
	}
	// Runtimes split very large convolutions into several kernels; cap any
	// single kernel and push the excess back onto the uncapped scalable
	// kernels so the budget is preserved.
	const maxKernel = 2500 * time.Microsecond
	var excess, uncappedSum time.Duration
	for i := range durs {
		if !scalable[i] {
			continue
		}
		if durs[i] > maxKernel {
			excess += durs[i] - maxKernel
			durs[i] = maxKernel
		} else {
			uncappedSum += durs[i]
		}
	}
	if excess > 0 && uncappedSum > 0 {
		grow := 1 + float64(excess)/float64(uncappedSum)
		for i := range durs {
			if scalable[i] && durs[i] < maxKernel {
				d := time.Duration(float64(durs[i]) * grow)
				if d > maxKernel {
					d = maxKernel
				}
				durs[i] = d
			}
		}
	}
	// Shuffle so large kernels are spread across stages.
	rng.Shuffle(n, func(i, j int) {
		durs[i], durs[j] = durs[j], durs[i]
		scalable[i], scalable[j] = scalable[j], scalable[i]
		ops[i], ops[j] = ops[j], ops[i]
	})
	return durs, ops
}

// gpuChain links kernels into a chain whose head is async.
func gpuChain(durs []time.Duration, ops []string, occ float64) *graph.Node {
	var head, tail *graph.Node
	for i, dur := range durs {
		n := &graph.Node{
			Op: ops[i], Device: graph.GPU,
			Duration: dur, Occupancy: occ,
		}
		if head == nil {
			head, tail = n, n
		} else {
			tail.Children = append(tail.Children, n)
			tail = n
		}
	}
	head.Async = true
	return head
}

// DurationCDF returns (durations, cumulative fraction) points for the GPU
// nodes of a graph — the paper's Figure 4.
func DurationCDF(g *graph.Graph) (durs []time.Duration, frac []float64) {
	durs = g.GPUDurations()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	frac = make([]float64, len(durs))
	for i := range durs {
		frac[i] = float64(i+1) / float64(len(durs))
	}
	return durs, frac
}
