package model

import (
	"testing"
	"testing/quick"
	"time"

	"olympian/internal/graph"
)

func TestTable2NodeCountsExact(t *testing.T) {
	for _, e := range Table2() {
		g, err := Build(e.Model, e.Batch)
		if err != nil {
			t.Fatalf("%s: %v", e.Model, err)
		}
		s := g.Stats()
		if s.Nodes != e.Nodes {
			t.Errorf("%s batch %d: %d nodes, want %d", e.Model, e.Batch, s.Nodes, e.Nodes)
		}
		if s.GPUNodes != e.GPUNodes {
			t.Errorf("%s batch %d: %d GPU nodes, want %d", e.Model, e.Batch, s.GPUNodes, e.GPUNodes)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Inception, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Inception, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Op != y.Op || x.Device != y.Device || x.Duration != y.Duration || x.Occupancy != y.Occupancy {
			t.Fatalf("node %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestNodeCountScalesLinearlyWithBatch(t *testing.T) {
	d := defs[Inception]
	g50, err := Build(Inception, 50)
	if err != nil {
		t.Fatal(err)
	}
	g100, err := Build(Inception, 100)
	if err != nil {
		t.Fatal(err)
	}
	diff := len(g100.Nodes) - len(g50.Nodes)
	if diff != 50*d.chainLen {
		t.Fatalf("node growth per 50 images = %d, want %d", diff, 50*d.chainLen)
	}
}

func TestDurationCDFShape(t *testing.T) {
	// Paper Figure 4 (Inception): the bulk of GPU nodes are tiny, >90%
	// under 1ms, with a millisecond-scale tail.
	g, err := Build(Inception, 100)
	if err != nil {
		t.Fatal(err)
	}
	durs := g.GPUDurations()
	under20us, under1ms := 0, 0
	for _, d := range durs {
		if d < 20*time.Microsecond {
			under20us++
		}
		if d < time.Millisecond {
			under1ms++
		}
	}
	f20 := float64(under20us) / float64(len(durs))
	f1ms := float64(under1ms) / float64(len(durs))
	if f20 < 0.65 {
		t.Errorf("only %.0f%% of nodes under 20us, want >=65%%", f20*100)
	}
	if f1ms < 0.90 {
		t.Errorf("only %.0f%% of nodes under 1ms, want >=90%%", f1ms*100)
	}
	if max := durs[len(durs)-1]; max < 500*time.Microsecond {
		t.Errorf("max node duration %v, want a sub-millisecond-plus tail", max)
	}
}

func TestGPUWorkApproximatesRuntimeBudget(t *testing.T) {
	// The sum of GPU kernel durations plus launch overhead should land in
	// the vicinity of the Table 2 runtime (the executor test validates the
	// end-to-end runtime; here we sanity-check the budget arithmetic).
	for _, e := range Table2() {
		g, err := Build(e.Model, e.Batch)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Stats()
		launch := time.Duration(s.GPUNodes) * 4 * time.Microsecond
		total := s.GPUWork + launch
		lo := time.Duration(float64(e.Runtime) * 0.7)
		hi := time.Duration(float64(e.Runtime) * 1.15)
		if total < lo || total > hi {
			t.Errorf("%s: GPU work+launch %v outside [%v, %v] of runtime %v",
				e.Model, total.Round(time.Millisecond), lo.Round(time.Millisecond),
				hi.Round(time.Millisecond), e.Runtime)
		}
	}
}

func TestRuntimeScalesWithBatch(t *testing.T) {
	r50, err := TargetRuntime(Inception, 50)
	if err != nil {
		t.Fatal(err)
	}
	r100, err := TargetRuntime(Inception, 100)
	if err != nil {
		t.Fatal(err)
	}
	r150, err := TargetRuntime(Inception, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !(r50 < r100 && r100 < r150) {
		t.Fatalf("runtime not monotone: %v %v %v", r50, r100, r150)
	}
	// Calibration anchor used throughout the evaluation: Inception at
	// batch 100 runs for roughly half a second (10 clients x 10 batches
	// then finish near 50s under fair sharing, Figure 11).
	if r100 < 400*time.Millisecond || r100 > 600*time.Millisecond {
		t.Fatalf("Inception batch-100 runtime %v, want ~0.5s", r100)
	}
}

func TestUnknownModelErrors(t *testing.T) {
	if _, err := Build("nonexistent", 10); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := TargetRuntime("nonexistent", 10); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := MemoryBytes("nonexistent", 10); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := Build(Inception, 0); err == nil {
		t.Fatal("expected error for zero batch")
	}
}

func TestMemoryModel(t *testing.T) {
	m100, err := MemoryBytes(Inception, 100)
	if err != nil {
		t.Fatal(err)
	}
	m200, err := MemoryBytes(Inception, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m200 <= m100 {
		t.Fatal("memory should grow with batch size")
	}
	// ~45 concurrent Inception batch-100 clients fit an 11GB device (§4.3).
	clients := int64(11<<30) / m100
	if clients < 35 || clients > 60 {
		t.Fatalf("11GB fits %d clients, want ~45", clients)
	}
}

func TestAsyncNodesAreGPUOnly(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name, 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Async && n.Device != graph.GPU {
				t.Fatalf("%s: async non-GPU node %d (%s)", name, n.ID, n.Op)
			}
		}
	}
}

func TestOccupancySaturatesAtPaperBatches(t *testing.T) {
	if occ := bodyOccupancy(100); occ != 1.0 {
		t.Fatalf("body occupancy at batch 100 = %.2f, want 1.0 (no spatial multiplexing)", occ)
	}
	if occ := bodyOccupancy(10); occ >= 0.5 {
		t.Fatalf("body occupancy at batch 10 = %.2f, want < 0.5", occ)
	}
}

// Property: every buildable graph passes validation and has exact chain
// arithmetic: nodes = body + batch*chainLen.
func TestPropertyGraphWellFormed(t *testing.T) {
	prop := func(rawBatch uint8, pick uint8) bool {
		batch := int(rawBatch)%256 + 1
		name := Names()[int(pick)%len(Names())]
		d := defs[name]
		g, err := Build(name, batch)
		if err != nil {
			return false
		}
		wantNodes := (d.tableNodes - d.tableBatch*d.chainLen) + batch*d.chainLen
		wantGPU := (d.tableGPU - d.tableBatch*d.chainGPU) + batch*d.chainGPU
		s := g.Stats()
		return s.Nodes == wantNodes && s.GPUNodes == wantGPU
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: target runtime is monotone in batch size for every model, and
// built graphs' GPU work grows with batch size.
func TestPropertyRuntimeMonotone(t *testing.T) {
	prop := func(pick uint8, b1Raw, b2Raw uint8) bool {
		name := Names()[int(pick)%len(Names())]
		b1 := int(b1Raw)%150 + 10
		b2 := b1 + int(b2Raw)%100 + 1
		r1, err := TargetRuntime(name, b1)
		if err != nil {
			return false
		}
		r2, err := TargetRuntime(name, b2)
		if err != nil {
			return false
		}
		if r2 <= r1 {
			return false
		}
		m1, _ := MemoryBytes(name, b1)
		m2, _ := MemoryBytes(name, b2)
		return m2 > m1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGPUWorkGrowsWithBatch(t *testing.T) {
	for _, name := range []string{Inception, VGG} {
		gSmall, err := Build(name, 20)
		if err != nil {
			t.Fatal(err)
		}
		gBig, err := Build(name, 120)
		if err != nil {
			t.Fatal(err)
		}
		if gBig.Stats().GPUWork <= gSmall.Stats().GPUWork {
			t.Fatalf("%s: GPU work did not grow with batch", name)
		}
	}
}

func TestKernelDurationCap(t *testing.T) {
	// The generator caps single kernels at 2.5ms (runtimes split huge
	// convolutions), at every batch size.
	for _, b := range []int{64, 150, 256} {
		g, err := Build(AlexNet, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Duration > 2500*time.Microsecond {
				t.Fatalf("batch %d: kernel of %v exceeds the cap", b, n.Duration)
			}
		}
	}
}
