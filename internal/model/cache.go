package model

import (
	"sync"

	"olympian/internal/graph"
)

// The build cache memoizes graph construction per (name, batch). Graphs are
// read-only after Finalize — the executor and scheduler never mutate nodes —
// so one shared instance can back any number of concurrent runs. Entries use
// a ready channel so concurrent first builds of the same model are
// single-flight: one goroutine constructs, the rest wait.
var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}
)

type cacheKey struct {
	name  string
	batch int
}

type cacheEntry struct {
	ready chan struct{}
	g     *graph.Graph
	err   error
}

// Build returns the (shared, read-only) dataflow graph for the given model
// and batch size, constructing and caching it on first use. It is safe for
// concurrent use.
func Build(name string, batch int) (*graph.Graph, error) {
	k := cacheKey{name, batch}
	cacheMu.Lock()
	ent, ok := cache[k]
	if !ok {
		ent = &cacheEntry{ready: make(chan struct{})}
		cache[k] = ent
		cacheMu.Unlock()
		ent.g, ent.err = BuildUncached(name, batch)
		close(ent.ready)
		return ent.g, ent.err
	}
	cacheMu.Unlock()
	<-ent.ready
	return ent.g, ent.err
}
