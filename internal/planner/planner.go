// Package planner predicts serving outcomes analytically, without running
// the simulation: under Olympian's fine-grained time-slicing, the GPU
// behaves as a (weighted) processor-sharing server over each job's profiled
// GPU demand, so finish times follow from a fluid model. Operators can use
// it for what-if capacity questions ("when would these ten clients finish
// under 2:1 weights?"), and the test suite uses it as an independent check
// that the scheduler implements its policies correctly.
package planner

import (
	"fmt"
	"time"
)

// Job is one client's aggregate GPU demand.
type Job struct {
	// ID identifies the job in the output (use the client index).
	ID int
	// Demand is the total GPU time the client needs (batches x per-batch
	// solo GPU duration D_j).
	Demand time.Duration
	// Weight is the weighted-fair share (>=1).
	Weight int
	// Priority orders strict tiers (higher first); used by PolicyPriority.
	Priority int
	// Arrive is when the client starts.
	Arrive time.Duration
}

// Policy selects the sharing discipline of the fluid model.
type Policy int

// Fluid-model policies.
const (
	// PolicyFair shares the GPU equally among active jobs.
	PolicyFair Policy = iota + 1
	// PolicyWeighted shares proportionally to job weights.
	PolicyWeighted
	// PolicyPriority serves the highest-priority tier exclusively, sharing
	// equally inside the tier.
	PolicyPriority
)

// Prediction is the fluid-model outcome for one job.
type Prediction struct {
	ID     int
	Finish time.Duration
}

// PredictFinishTimes runs the fluid model to completion and returns each
// job's predicted finish time, in the order the jobs were given.
func PredictFinishTimes(jobs []Job, policy Policy) ([]Prediction, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("planner: no jobs")
	}
	type state struct {
		Job
		remaining float64 // seconds of GPU demand left
		finish    float64
		done      bool
	}
	states := make([]*state, len(jobs))
	for i, j := range jobs {
		if j.Demand <= 0 {
			return nil, fmt.Errorf("planner: job %d has no demand", j.ID)
		}
		w := j.Weight
		if w < 1 {
			w = 1
		}
		jj := j
		jj.Weight = w
		states[i] = &state{Job: jj, remaining: j.Demand.Seconds()}
	}

	now := 0.0
	for {
		// Active set: arrived, not finished.
		var active []*state
		for _, s := range states {
			if !s.done && s.Arrive.Seconds() <= now+1e-12 {
				active = append(active, s)
			}
		}
		// Next arrival after now.
		nextArrival := -1.0
		for _, s := range states {
			if !s.done && s.Arrive.Seconds() > now+1e-12 {
				if nextArrival < 0 || s.Arrive.Seconds() < nextArrival {
					nextArrival = s.Arrive.Seconds()
				}
			}
		}
		if len(active) == 0 {
			if nextArrival < 0 {
				break // all done
			}
			now = nextArrival
			continue
		}
		rates := make([]float64, len(active))
		switch policy {
		case PolicyWeighted:
			total := 0
			for _, s := range active {
				total += s.Weight
			}
			for i, s := range active {
				rates[i] = float64(s.Weight) / float64(total)
			}
		case PolicyPriority:
			top := active[0].Priority
			for _, s := range active {
				if s.Priority > top {
					top = s.Priority
				}
			}
			tier := 0
			for _, s := range active {
				if s.Priority == top {
					tier++
				}
			}
			for i, s := range active {
				if s.Priority == top {
					rates[i] = 1 / float64(tier)
				}
			}
		default: // PolicyFair
			for i := range active {
				rates[i] = 1 / float64(len(active))
			}
		}
		// Time to the first completion at current rates.
		dt := -1.0
		for i, s := range active {
			if rates[i] <= 0 {
				continue
			}
			d := s.remaining / rates[i]
			if dt < 0 || d < dt {
				dt = d
			}
		}
		if dt < 0 {
			return nil, fmt.Errorf("planner: no progress at t=%.3fs", now)
		}
		// Stop at the next arrival if it comes first.
		if nextArrival > 0 && nextArrival-now < dt {
			dt = nextArrival - now
		}
		for i, s := range active {
			s.remaining -= rates[i] * dt
		}
		now += dt
		for _, s := range active {
			if !s.done && s.remaining <= 1e-9 {
				s.done = true
				s.finish = now
			}
		}
	}

	out := make([]Prediction, len(states))
	for i, s := range states {
		out[i] = Prediction{ID: s.ID, Finish: time.Duration(s.finish * float64(time.Second))}
	}
	return out, nil
}
