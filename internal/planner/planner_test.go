package planner

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"olympian/internal/core"
	"olympian/internal/model"
	"olympian/internal/profiler"
	"olympian/internal/workload"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestFairFluidModel(t *testing.T) {
	// Four equal jobs of 1s each: all finish at 4s.
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{ID: i, Demand: time.Second}
	}
	preds, err := PredictFinishTimes(jobs, PolicyFair)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if d := (p.Finish - 4*time.Second).Abs(); d > time.Millisecond {
			t.Fatalf("job %d finish %v, want 4s", p.ID, p.Finish)
		}
	}
}

func TestWeightedFluidMatchesPaperTheory(t *testing.T) {
	// Weights k:1 with equal work: heavy finishes at (k+1)/2k of light.
	jobs := []Job{
		{ID: 0, Demand: time.Second, Weight: 2},
		{ID: 1, Demand: time.Second, Weight: 2},
		{ID: 2, Demand: time.Second, Weight: 1},
		{ID: 3, Demand: time.Second, Weight: 1},
	}
	preds, err := PredictFinishTimes(jobs, PolicyWeighted)
	if err != nil {
		t.Fatal(err)
	}
	ratio := preds[0].Finish.Seconds() / preds[2].Finish.Seconds()
	if math.Abs(ratio-0.75) > 0.01 {
		t.Fatalf("heavy/light ratio %.3f, want 0.75", ratio)
	}
	// Work conservation: last finish = total demand.
	if d := (preds[2].Finish - 4*time.Second).Abs(); d > time.Millisecond {
		t.Fatalf("light finish %v, want 4s", preds[2].Finish)
	}
}

func TestPriorityFluidSerializesTiers(t *testing.T) {
	jobs := []Job{
		{ID: 0, Demand: time.Second, Priority: 2},
		{ID: 1, Demand: time.Second, Priority: 2},
		{ID: 2, Demand: time.Second, Priority: 1},
	}
	preds, err := PredictFinishTimes(jobs, PolicyPriority)
	if err != nil {
		t.Fatal(err)
	}
	if d := (preds[0].Finish - 2*time.Second).Abs(); d > time.Millisecond {
		t.Fatalf("high tier finish %v, want 2s", preds[0].Finish)
	}
	if d := (preds[2].Finish - 3*time.Second).Abs(); d > time.Millisecond {
		t.Fatalf("low tier finish %v, want 3s", preds[2].Finish)
	}
}

func TestArrivalsChangeShares(t *testing.T) {
	jobs := []Job{
		{ID: 0, Demand: time.Second},
		{ID: 1, Demand: time.Second, Arrive: sec(1)},
	}
	preds, err := PredictFinishTimes(jobs, PolicyFair)
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 runs alone for 1s (done at... it finishes exactly at 1s as
	// job 1 arrives), job 1 then runs alone until 2s.
	if d := (preds[0].Finish - time.Second).Abs(); d > time.Millisecond {
		t.Fatalf("job 0 finish %v", preds[0].Finish)
	}
	if d := (preds[1].Finish - 2*time.Second).Abs(); d > time.Millisecond {
		t.Fatalf("job 1 finish %v", preds[1].Finish)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := PredictFinishTimes(nil, PolicyFair); err == nil {
		t.Fatal("expected error for empty job set")
	}
	if _, err := PredictFinishTimes([]Job{{ID: 0}}, PolicyFair); err == nil {
		t.Fatal("expected error for zero demand")
	}
}

// Property: the fluid model is work-conserving — with all arrivals at zero
// the last finish equals the total demand, and no job finishes before its
// own demand.
func TestPropertyWorkConservation(t *testing.T) {
	prop := func(raw []uint16, weighted bool) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		var jobs []Job
		var total time.Duration
		for i, r := range raw {
			d := time.Duration(r%2000+1) * time.Millisecond
			total += d
			jobs = append(jobs, Job{ID: i, Demand: d, Weight: int(r%3) + 1})
		}
		policy := PolicyFair
		if weighted {
			policy = PolicyWeighted
		}
		preds, err := PredictFinishTimes(jobs, policy)
		if err != nil {
			return false
		}
		var last time.Duration
		for i, p := range preds {
			if p.Finish < jobs[i].Demand-time.Millisecond {
				return false
			}
			if p.Finish > last {
				last = p.Finish
			}
		}
		return (last - total).Abs() < 2*time.Millisecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The planner's predictions should match the discrete-event simulation
// within a few percent — the fluid model is the scheduler's spec.
func TestPlannerMatchesSimulation(t *testing.T) {
	clients := []workload.ClientSpec{
		{Model: model.Inception, Batch: 50, Batches: 3, Weight: 2},
		{Model: model.Inception, Batch: 50, Batches: 3, Weight: 2},
		{Model: model.Inception, Batch: 50, Batches: 3, Weight: 1},
		{Model: model.Inception, Batch: 50, Batches: 3, Weight: 1},
	}
	g, err := model.Build(model.Inception, 50)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.ProfileSolo(g, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i, c := range clients {
		jobs = append(jobs, Job{
			ID:     i,
			Demand: time.Duration(c.Batches) * prof.GPUDuration,
			Weight: c.Weight,
		})
	}
	preds, err := PredictFinishTimes(jobs, PolicyWeighted)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := workload.Run(workload.Config{
		Seed: 1, Kind: workload.Olympian, Policy: core.NewWeightedFair(),
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	simFins := simRes.Finishes.Durations()
	for i, p := range preds {
		relErr := math.Abs(p.Finish.Seconds()-simFins[i].Seconds()) / simFins[i].Seconds()
		if relErr > 0.10 {
			t.Errorf("client %d: predicted %v, simulated %v (%.0f%% off)",
				i, p.Finish.Round(time.Millisecond), simFins[i].Round(time.Millisecond), relErr*100)
		}
	}
}
