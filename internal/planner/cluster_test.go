package planner

import (
	"reflect"
	"testing"
	"time"
)

func gib(n int64) int64 { return n << 30 }

func refDevices(n int, mem int64) []DeviceCap {
	out := make([]DeviceCap, n)
	for i := range out {
		out[i] = DeviceCap{ID: i, MemoryBytes: mem, ClockScale: 1}
	}
	return out
}

func TestReplicaCountScalesWithLoad(t *testing.T) {
	devs := refDevices(8, gib(11))
	light := ModelLoad{Model: "m", Batch: 1, Cost: 2 * time.Millisecond, MemoryBytes: gib(1), Rate: 50}
	if n := ReplicaCount(light, devs, DefaultTargetUtil); n != 1 {
		t.Fatalf("light load wants %d replicas, expected 1", n)
	}
	// 400 req/s x 5ms = 2 GPU-sec/sec, against a 0.7 budget per device.
	heavy := light
	heavy.Cost = 5 * time.Millisecond
	heavy.Rate = 400
	if n := ReplicaCount(heavy, devs, DefaultTargetUtil); n != 3 {
		t.Fatalf("heavy load wants %d replicas, expected 3", n)
	}
	// Demand beyond the fleet clamps to one replica per device.
	flood := heavy
	flood.Rate = 1e5
	if n := ReplicaCount(flood, devs, DefaultTargetUtil); n != len(devs) {
		t.Fatalf("flood wants %d replicas, expected %d", n, len(devs))
	}
}

func TestPlacementRejectsMemoryOverflow(t *testing.T) {
	devs := refDevices(2, gib(4))
	models := []ModelLoad{
		{Model: "whale", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(8), Rate: 10},
	}
	for _, pol := range []PlacePolicy{BestFitDecreasing, Spread} {
		if _, err := PlanPlacement(models, devs, pol); err == nil {
			t.Fatalf("%v: oversized model placed, expected rejection", pol)
		}
	}
	// Overflow by accumulation, not by a single replica: three 3-GiB
	// models fit individually but not two per 4-GiB device.
	crowd := []ModelLoad{
		{Model: "a", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(3), Rate: 10},
		{Model: "b", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(3), Rate: 10},
		{Model: "c", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(3), Rate: 10},
	}
	if _, err := PlanPlacement(crowd, devs, BestFitDecreasing); err == nil {
		t.Fatal("overcommitted fleet accepted, expected rejection")
	}
}

func TestPlacementHeterogeneousDevices(t *testing.T) {
	// One big device, one small: the large model can only live on device 1,
	// and best-fit must still find room for the small model afterwards.
	devs := []DeviceCap{
		{ID: 0, MemoryBytes: gib(4), ClockScale: 1},
		{ID: 1, MemoryBytes: gib(12), ClockScale: 1.5},
	}
	models := []ModelLoad{
		{Model: "small", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(2), Rate: 10},
		{Model: "large", Batch: 1, Cost: time.Millisecond, MemoryBytes: gib(10), Rate: 10},
	}
	pl, err := PlanPlacement(models, devs, BestFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.DevicesFor("large", 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("large model on %v, want [1]", got)
	}
	if got := pl.DevicesFor("small", 1); len(got) != 1 {
		t.Fatalf("small model on %v, want one device", got)
	}
	// Spread should account for the faster clock: the same demand loads
	// device 1 less, so the small model lands there too once the large
	// model's share is placed... but never beyond memory.
	if _, err := PlanPlacement(models, devs, Spread); err != nil {
		t.Fatalf("spread on heterogeneous fleet: %v", err)
	}
}

func TestPlacementDeterministicTieBreak(t *testing.T) {
	// Two identical devices score equally for the first replica: the
	// lowest device ID must win, every time.
	devs := refDevices(2, gib(11))
	models := []ModelLoad{
		{Model: "m", Batch: 4, Cost: time.Millisecond, MemoryBytes: gib(1), Rate: 10},
	}
	for _, pol := range []PlacePolicy{BestFitDecreasing, Spread} {
		pl, err := PlanPlacement(models, devs, pol)
		if err != nil {
			t.Fatal(err)
		}
		if got := pl.DevicesFor("m", 4); len(got) != 1 || got[0] != 0 {
			t.Fatalf("%v: tie broke to %v, want [0]", pol, got)
		}
	}
	// Full-plan determinism: repeated planning of a multi-model fleet is
	// byte-identical.
	mix := []ModelLoad{
		{Model: "a", Batch: 1, Cost: 2 * time.Millisecond, MemoryBytes: gib(2), Rate: 300},
		{Model: "b", Batch: 1, Cost: 1 * time.Millisecond, MemoryBytes: gib(2), Rate: 300},
		{Model: "c", Batch: 1, Cost: 3 * time.Millisecond, MemoryBytes: gib(3), Rate: 100},
	}
	fleet := refDevices(4, gib(11))
	for _, pol := range []PlacePolicy{BestFitDecreasing, Spread} {
		first, err := PlanPlacement(mix, fleet, pol)
		if err != nil {
			t.Fatal(err)
		}
		again, err := PlanPlacement(mix, fleet, pol)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("%v: same inputs produced different placements", pol)
		}
	}
}

func TestPlacementSpreadBalancesLoad(t *testing.T) {
	devs := refDevices(4, gib(11))
	// Four equal models, heavy enough for 2 replicas each: spread should
	// land 2 replicas per device.
	var models []ModelLoad
	for _, name := range []string{"a", "b", "c", "d"} {
		models = append(models, ModelLoad{
			Model: name, Batch: 1, Cost: 4 * time.Millisecond, MemoryBytes: gib(1), Rate: 200,
		})
	}
	pl, err := PlanPlacement(models, devs, Spread)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(devs))
	for _, r := range pl.Replicas {
		counts[r.Device]++
	}
	for i, c := range counts {
		if c != 2 {
			t.Fatalf("device %d hosts %d replicas, want 2 (counts %v)", i, c, counts)
		}
	}
	for i := 1; i < len(pl.LoadShare); i++ {
		if pl.LoadShare[i] != pl.LoadShare[0] {
			t.Fatalf("spread load shares uneven: %v", pl.LoadShare)
		}
	}
}
