// Cluster placement: before a fleet serves traffic, an operator must decide
// how many replicas each model needs and which device hosts each replica.
// This file extends the planner with that decision layer. Replica counts
// follow from offered load against each device's quantum budget (a device
// can hand out at most its capacity in profiled GPU time per wall second),
// and assignment packs replicas into device memory under one of two
// policies: best-fit-decreasing (bin packing, minimises fragmentation) or a
// fairness-aware spread (equalises each device's expected load share, the
// property the per-device Olympian schedulers rely on for predictable
// quanta). All decisions are deterministic: inputs are sorted on stable
// keys and every score tie breaks toward the lowest device ID.
package planner

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ModelLoad describes one served model's placement-relevant footprint.
type ModelLoad struct {
	// Model and Batch identify the profiled graph.
	Model string
	Batch int
	// Cost is the profiled per-request GPU cost C_j.
	Cost time.Duration
	// GPUDuration is the profiled solo GPU duration D_j (defaults to Cost
	// when zero); C_j/D_j is the cost accumulation rate the router's debt
	// policy uses.
	GPUDuration time.Duration
	// MemoryBytes is the device memory one replica pins (weights +
	// workspace).
	MemoryBytes int64
	// Rate is the offered load in requests per second.
	Rate float64
}

// demand returns the model's offered GPU load in reference-GPU-seconds per
// second.
func (m ModelLoad) demand() float64 { return m.Rate * m.Cost.Seconds() }

// DeviceCap is one device's placement-relevant capacity.
type DeviceCap struct {
	// ID identifies the device in the fleet (its index).
	ID int
	// MemoryBytes is usable device memory.
	MemoryBytes int64
	// ClockScale is relative speed (1.0 = reference platform): the device
	// supplies ClockScale reference-GPU-seconds of work per wall second.
	ClockScale float64
}

// PlacePolicy selects the replica-assignment discipline.
type PlacePolicy int

// Placement policies.
const (
	// BestFitDecreasing packs replicas largest-memory-first onto the
	// device with the least remaining memory that still fits.
	BestFitDecreasing PlacePolicy = iota + 1
	// Spread balances expected load: each replica goes to the fitting
	// device with the lowest accumulated load share.
	Spread
)

// String names the policy.
func (p PlacePolicy) String() string {
	switch p {
	case BestFitDecreasing:
		return "best-fit-decreasing"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("PlacePolicy(%d)", int(p))
	}
}

// DefaultTargetUtil is the fraction of a device's quantum budget replica
// sizing plans against, leaving headroom for switch overhead and bursts.
const DefaultTargetUtil = 0.7

// Replica is one placed model instance.
type Replica struct {
	Model  string
	Batch  int
	Device int // DeviceCap.ID
}

// Placement is the planned assignment of replicas to devices.
type Placement struct {
	Policy   PlacePolicy
	Replicas []Replica
	// MemUsed and LoadShare are indexed by position in the devices slice
	// given to PlanPlacement.
	MemUsed   []int64
	LoadShare []float64
}

// DevicesFor returns the device IDs hosting (model, batch), ascending.
func (pl *Placement) DevicesFor(modelName string, batch int) []int {
	var out []int
	for _, r := range pl.Replicas {
		if r.Model == modelName && r.Batch == batch {
			out = append(out, r.Device)
		}
	}
	sort.Ints(out)
	return out
}

// ReplicaCount derives how many replicas a model needs: its offered GPU
// demand divided by the fleet's mean per-device quantum budget
// (ClockScale × targetUtil reference-GPU-seconds per second), rounded up,
// clamped to [1, len(devices)] since a model gains nothing from two
// replicas on one device.
func ReplicaCount(m ModelLoad, devices []DeviceCap, targetUtil float64) int {
	if len(devices) == 0 {
		return 0
	}
	if targetUtil <= 0 {
		targetUtil = DefaultTargetUtil
	}
	budget := 0.0
	for _, d := range devices {
		cs := d.ClockScale
		if cs <= 0 {
			cs = 1
		}
		budget += cs * targetUtil
	}
	budget /= float64(len(devices))
	n := int(math.Ceil(m.demand() / budget))
	if n < 1 {
		n = 1
	}
	if n > len(devices) {
		n = len(devices)
	}
	return n
}

// PlanPlacement sizes replicas for each model from its offered load and
// assigns them to devices under the given policy. It fails when any replica
// cannot be placed within device memory — a fleet that cannot hold the
// model set should be rejected at planning time, not discovered mid-run.
func PlanPlacement(models []ModelLoad, devices []DeviceCap, policy PlacePolicy) (*Placement, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("planner: no models to place")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("planner: no devices to place on")
	}
	if policy == 0 {
		policy = BestFitDecreasing
	}
	seen := make(map[int]bool, len(devices))
	for _, d := range devices {
		if seen[d.ID] {
			return nil, fmt.Errorf("planner: duplicate device id %d", d.ID)
		}
		seen[d.ID] = true
	}
	for _, m := range models {
		if m.Cost <= 0 {
			return nil, fmt.Errorf("planner: model %s/%d has no profiled cost", m.Model, m.Batch)
		}
		if m.MemoryBytes <= 0 {
			return nil, fmt.Errorf("planner: model %s/%d has no memory footprint", m.Model, m.Batch)
		}
	}

	// Stable model order: both policies place heavy models first (memory
	// for BFD, load for spread), with name/batch as deterministic
	// tie-breakers.
	ordered := append([]ModelLoad(nil), models...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		switch policy {
		case Spread:
			if a.demand() != b.demand() {
				return a.demand() > b.demand()
			}
		default:
			if a.MemoryBytes != b.MemoryBytes {
				return a.MemoryBytes > b.MemoryBytes
			}
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Batch < b.Batch
	})

	pl := &Placement{
		Policy:    policy,
		MemUsed:   make([]int64, len(devices)),
		LoadShare: make([]float64, len(devices)),
	}
	hosts := make(map[string]map[int]bool, len(models)) // model/batch -> device positions
	for _, m := range ordered {
		key := fmt.Sprintf("%s/%d", m.Model, m.Batch)
		if hosts[key] == nil {
			hosts[key] = make(map[int]bool)
		}
		replicas := ReplicaCount(m, devices, DefaultTargetUtil)
		perReplica := m.demand() / float64(replicas)
		for rep := 0; rep < replicas; rep++ {
			best := -1
			var bestScore float64
			for pos, d := range devices {
				if hosts[key][pos] {
					continue // one replica of a model per device
				}
				remain := d.MemoryBytes - pl.MemUsed[pos]
				if remain < m.MemoryBytes {
					continue
				}
				cs := d.ClockScale
				if cs <= 0 {
					cs = 1
				}
				var score float64
				switch policy {
				case Spread:
					score = pl.LoadShare[pos] + perReplica/cs
				default: // BestFitDecreasing: tightest remaining fit wins
					score = float64(remain - m.MemoryBytes)
				}
				// Strict < keeps the first (lowest-position, hence
				// lowest-ID) device on ties.
				if best < 0 || score < bestScore {
					best, bestScore = pos, score
				}
			}
			if best < 0 {
				return nil, fmt.Errorf(
					"planner: cannot place %s replica %d/%d (%d MiB): no device with room",
					key, rep+1, replicas, m.MemoryBytes>>20)
			}
			hosts[key][best] = true
			pl.MemUsed[best] += m.MemoryBytes
			cs := devices[best].ClockScale
			if cs <= 0 {
				cs = 1
			}
			pl.LoadShare[best] += perReplica / cs
			pl.Replicas = append(pl.Replicas, Replica{
				Model: m.Model, Batch: m.Batch, Device: devices[best].ID,
			})
		}
	}
	return pl, nil
}
